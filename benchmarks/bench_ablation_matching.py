"""Ablation A3: the matching degree of two partitions.

The paper's future-work section asks for "a quantitative description of
the matching degree of two partitions".  This ablation computes concrete
matching metrics for every physical x logical layout pair — messages per
period, fragments per byte, contiguity — and benchmarks how plan
construction scales with mismatch.
"""

import pytest

from repro.distributions import matrix_partition
from repro.redistribution import build_plan

N = 512
LAYOUTS = ["r", "c", "b"]
PAIRS = [(a, b) for a in LAYOUTS for b in LAYOUTS]


@pytest.mark.parametrize(
    "src,dst", PAIRS, ids=[f"{a}->{b}" for a, b in PAIRS]
)
def test_plan_construction(benchmark, src, dst):
    ps = matrix_partition(src, N, N, 4)
    pd = matrix_partition(dst, N, N, 4)
    benchmark.group = "matching-plan-build"
    plan = benchmark(lambda: build_plan(ps, pd))
    assert plan.total_bytes(N * N) == N * N


def test_matching_metrics(output_dir):
    """Emit the matching-degree table; assert the expected ordering."""
    import os

    lines = [
        f"{'pair':>6} {'transfers':>9} {'src_frags':>9} {'dst_frags':>9} "
        f"{'mean_frag_B':>11} {'identity':>8}"
    ]
    stats = {}
    for src, dst in PAIRS:
        ps = matrix_partition(src, N, N, 4)
        pd = matrix_partition(dst, N, N, 4)
        plan = build_plan(ps, pd)
        s = plan.fragment_statistics()
        stats[(src, dst)] = (s, plan.is_identity)
        lines.append(
            f"{src+'-'+dst:>6} {s['transfers']:>9} {s['src_fragments']:>9} "
            f"{s['dst_fragments']:>9} {s['mean_fragment_bytes']:>11.1f} "
            f"{str(plan.is_identity):>8}"
        )
    text = "\n".join(lines)
    with open(os.path.join(output_dir, "matching.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)

    # Identity pairs are perfectly matched.
    for layout in LAYOUTS:
        assert stats[(layout, layout)][1] is True
    # The c-r pair fragments far more than r-r.
    assert (
        stats[("c", "r")][0]["mean_fragment_bytes"]
        < stats[("r", "r")][0]["mean_fragment_bytes"]
    )
    # Mismatched pairs are all-to-all (16 transfers), matched are 1:1.
    assert stats[("c", "r")][0]["transfers"] == 16
    assert stats[("r", "r")][0]["transfers"] == 4
