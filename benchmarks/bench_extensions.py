"""Extension experiments: the read-side table and weak scaling.

The paper presents only the write side of its benchmark ("the write and
read are reverse symmetrical", §8) and runs on a fixed 4+4-node subset
of its cluster.  These benchmarks produce the read-side mirror of
Table 1 and a weak-scaling sweep, asserting that the paper's claims
survive both.
"""

import os

import pytest

from repro.bench.extensions import read_table, scaling_table
from repro.bench import MatrixWorkload
from repro.clusterfile import Clusterfile
from repro.simulation import ClusterConfig


@pytest.mark.parametrize("layout", ["c", "r"])
def test_read_operation(benchmark, layout):
    """Wall time of one concurrent 4-process view read."""
    w = MatrixWorkload(512, layout)
    data = w.data()
    fs = Clusterfile(ClusterConfig())
    fs.create("m", w.physical())
    logical = w.logical()
    for c in range(4):
        fs.set_view("m", c, logical)
    fs.write("m", w.view_accesses(data))
    per = w.bytes_per_process
    accesses = [(c, 0, per) for c in range(4)]
    benchmark.group = "read-512"
    bufs = benchmark.pedantic(
        lambda: fs.read("m", accesses), rounds=3, iterations=1
    )
    assert sum(b.size for b in bufs) == data.size


def test_read_symmetry(output_dir):
    """The read-side table mirrors the write-side orderings."""
    rows = read_table(sizes=(256, 512), repeats=2)
    by = {(r.size, r.physical): r for r in rows}
    lines = [
        f"{'Size':>5} {'Ph':>3} | {'t_m':>7} {'t_s':>9} {'t_r_bc':>9} "
        f"{'t_r_disk':>9}"
    ]
    for r in rows:
        lines.append(
            f"{r.size:>5} {r.physical:>3} | {r.t_m:7.1f} {r.t_s:9.1f} "
            f"{r.t_r_bc:9.0f} {r.t_r_disk:9.0f}"
        )
    text = "\n".join(lines)
    with open(os.path.join(output_dir, "read_table.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    for s in (256, 512):
        # Matched layout: no client-side scatter, near-zero extremity
        # mapping - the write-side claims, mirrored.
        assert by[(s, "r")].t_s == 0.0
        assert by[(s, "r")].t_m < 50
        assert by[(s, "r")].t_r_disk < by[(s, "c")].t_r_disk


def test_weak_scaling(output_dir):
    """The matching penalty grows with the all-to-all width."""
    rows = scaling_table(nprocs_list=(2, 4, 8), repeats=1)
    by = {(r.nprocs, r.physical): r for r in rows}
    lines = [
        f"{'np':>3} {'Ph':>3} | {'B/proc':>8} {'msgs':>5} {'t_g':>9} "
        f"{'t_w_disk':>10}"
    ]
    for r in rows:
        lines.append(
            f"{r.nprocs:>3} {r.physical:>3} | {r.bytes_per_process:>8} "
            f"{r.messages:>5} {r.t_g:9.1f} {r.t_w_disk:10.0f}"
        )
    text = "\n".join(lines)
    with open(os.path.join(output_dir, "scaling.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    for p in (2, 4, 8):
        # Mismatched layout always needs p^2 message pairs, matched p.
        assert by[(p, "c")].messages > by[(p, "r")].messages
        assert by[(p, "r")].t_g == 0.0
    # The message gap widens with the process count.
    gap = {
        p: by[(p, "c")].messages / by[(p, "r")].messages for p in (2, 4, 8)
    }
    assert gap[8] > gap[2]
