"""Ablation A5: direct vs two-phase collective writes.

Quantifies the MPI-IO connection (§3): when per-process views are badly
matched to the physical layout, shuffling through file-domain
aggregators (two redistributions) beats hitting the file system with
fragments (one redistribution at the worst possible place).
"""

import numpy as np
import pytest

from repro import matrix_partition
from repro.clusterfile import Clusterfile
from repro.clusterfile.collective import two_phase_write
from repro.redistribution import distribute
from repro.simulation import ClusterConfig

N = 256
CASES = [("c", "r"), ("c", "b"), ("r", "r")]


def _setup(logical_layout, phys_layout):
    data = np.random.default_rng(2).integers(0, 256, N * N, dtype=np.uint8)
    logical = matrix_partition(logical_layout, N, N, 4)
    fs = Clusterfile(ClusterConfig())
    fs.create("m", matrix_partition(phys_layout, N, N, 4))
    for c in range(4):
        fs.set_view("m", c, logical)
    src = distribute(data, logical)
    return fs, data, [(c, 0, src[c]) for c in range(4)]


@pytest.mark.parametrize(
    "logical,phys", CASES, ids=[f"{a}-views-{b}-file" for a, b in CASES]
)
def test_direct_write(benchmark, logical, phys):
    fs, data, accesses = _setup(logical, phys)
    benchmark.group = f"collective-{logical}-{phys}"
    benchmark.pedantic(
        lambda: fs.write("m", accesses, to_disk=True), rounds=3, iterations=1
    )
    np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)


@pytest.mark.parametrize(
    "logical,phys", CASES, ids=[f"{a}-views-{b}-file" for a, b in CASES]
)
def test_two_phase_write(benchmark, logical, phys):
    fs, data, accesses = _setup(logical, phys)
    benchmark.group = f"collective-{logical}-{phys}"
    benchmark.pedantic(
        lambda: two_phase_write(fs, "m", accesses, to_disk=True),
        rounds=3,
        iterations=1,
    )
    np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)


def test_two_phase_wins_on_mismatch(output_dir):
    """Simulated completion: two-phase beats direct for mismatched
    views, and is no worse than ~shuffle-cost for matched ones."""
    import os

    lines = [
        f"{'case':>16} {'direct_us':>10} {'2ph_write_us':>12} "
        f"{'shuffle_us':>10} {'2ph_total_us':>12}"
    ]
    results = {}
    for logical, phys in CASES:
        fs, _, accesses = _setup(logical, phys)
        direct = fs.write("m", accesses, to_disk=True)
        t_direct = max(b.t_w_disk for b in direct.per_compute.values())

        fs2, _, accesses2 = _setup(logical, phys)
        res = two_phase_write(fs2, "m", accesses2, to_disk=True)
        t_write = max(b.t_w_disk for b in res.write.per_compute.values())
        t_total = t_write + res.shuffle_time_s * 1e6
        results[(logical, phys)] = (t_direct, t_total)
        lines.append(
            f"{logical + '-views/' + phys + '-file':>16} {t_direct:10.0f} "
            f"{t_write:12.0f} {res.shuffle_time_s * 1e6:10.0f} {t_total:12.0f}"
        )
    text = "\n".join(lines)
    with open(os.path.join(output_dir, "collective.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)
    t_direct, t_total = results[("c", "r")]
    assert t_total < t_direct, "two-phase must win for column views"
