"""Ablation A1: segment-level redistribution vs per-byte mapping.

Paper §3: "it would be inefficient to map each byte from one
distribution to another.  Instead ... a redistribution algorithm that
maps between partitions non-contiguous segments of bytes, instead of
singular bytes."  This ablation quantifies the claim on the same
workloads:

* ``plan+segments`` — the paper's approach (this library's executor);
* ``bytewise-vectorized`` — per-byte offset arithmetic in bulk NumPy,
  no segment coalescing (isolates the algorithmic benefit);
* ``bytewise-scalar`` — the literal per-byte MAP composition (tiny
  sizes only; it is thousands of times slower).
"""

import numpy as np
import pytest

from repro.distributions import matrix_partition
from repro.redistribution import (
    build_plan,
    distribute,
    execute_plan,
    redistribute_bytewise,
    redistribute_bytewise_vectorized,
)


def _setup(n, src_layout="c", dst_layout="r"):
    src_p = matrix_partition(src_layout, n, n, 4)
    dst_p = matrix_partition(dst_layout, n, n, 4)
    data = np.arange(n * n, dtype=np.uint8)
    src = distribute(data, src_p)
    return src_p, dst_p, src, data.size


@pytest.mark.parametrize("n", [128, 512])
def test_segments_with_plan_reuse(benchmark, n):
    """The paper's steady state: schedule precomputed at view set."""
    src_p, dst_p, src, length = _setup(n)
    plan = build_plan(src_p, dst_p)
    benchmark.group = f"granularity-{n}"
    out = benchmark(lambda: execute_plan(plan, src, length))
    assert sum(b.size for b in out) == length


@pytest.mark.parametrize("n", [128, 512])
def test_segments_including_planning(benchmark, n):
    """One-shot cost including schedule construction."""
    src_p, dst_p, src, length = _setup(n)
    benchmark.group = f"granularity-{n}"
    benchmark(lambda: execute_plan(build_plan(src_p, dst_p), src, length))


@pytest.mark.parametrize("n", [128, 512])
def test_bytewise_vectorized(benchmark, n):
    src_p, dst_p, src, length = _setup(n)
    benchmark.group = f"granularity-{n}"
    benchmark(
        lambda: redistribute_bytewise_vectorized(src_p, dst_p, src, length)
    )


@pytest.mark.parametrize("n", [64])
def test_bytewise_scalar(benchmark, n):
    """The literal reading of 'map each byte': scalar MAP per byte."""
    src_p, dst_p, src, length = _setup(n)
    benchmark.group = f"granularity-scalar-{n}"
    benchmark.pedantic(
        lambda: redistribute_bytewise(src_p, dst_p, src, length),
        rounds=2,
        iterations=1,
    )


def test_segment_approach_wins():
    """Hard assertion of the paper's claim at a representative size."""
    import time

    src_p, dst_p, src, length = _setup(256)
    plan = build_plan(src_p, dst_p)

    t0 = time.perf_counter()
    for _ in range(5):
        fast = execute_plan(plan, src, length)
    t_fast = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(5):
        slow = redistribute_bytewise_vectorized(src_p, dst_p, src, length)
    t_slow = time.perf_counter() - t0

    for a, b in zip(fast, slow):
        np.testing.assert_array_equal(a, b)
    assert t_fast < t_slow, (
        f"segment-level ({t_fast:.4f}s) should beat per-byte ({t_slow:.4f}s)"
    )
