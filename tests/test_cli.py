"""Tests for the command-line entry points (repro.tools, repro.bench)."""

import pytest

from repro import tools
from repro.bench.__main__ import main as bench_main


class TestToolsCli:
    def test_render(self, capsys):
        assert tools.main(["render", "r", "8", "8", "4"]) == 0
        out = capsys.readouterr().out
        assert "Partition: 4 elements" in out
        assert "element 0" in out

    def test_match(self, capsys):
        assert tools.main(["match", "c", "r", "64", "4"]) == 0
        out = capsys.readouterr().out
        assert "degree" in out
        assert "transfers            16" in out

    def test_match_identity(self, capsys):
        tools.main(["match", "r", "r", "64", "4"])
        out = capsys.readouterr().out
        assert "identity             True" in out
        assert "1.0000" in out

    def test_plan(self, capsys):
        assert tools.main(["plan", "b", "r", "16", "4"]) == 0
        out = capsys.readouterr().out
        assert "8 transfers" in out
        assert "element 0 -> 0" in out

    def test_plan_identity_marker(self, capsys):
        tools.main(["plan", "r", "r", "16", "4"])
        assert "[identity]" in capsys.readouterr().out

    def test_figure3(self, capsys):
        assert tools.main(["figure3"]) == 0
        out = capsys.readouterr().out
        assert "..001122001122" in out

    def test_bad_layout_rejected(self):
        with pytest.raises(SystemExit):
            tools.main(["render", "x", "8", "8", "4"])

    def test_trace(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "trace.json"
        chrome_path = tmp_path / "trace.chrome.json"
        rc = tools.main(
            [
                "trace", "r", "c", "16", "4",
                "--json", str(json_path),
                "--chrome", str(chrome_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "parallel_write" in out
        assert "parallel_read" in out
        assert "engine.write.ops" in out  # metrics snapshot printed
        roots = json.loads(json_path.read_text())
        assert "parallel_write" in [r["name"] for r in roots]
        events = json.loads(chrome_path.read_text())
        assert {e["pid"] for e in events} == {1, 2}

    def test_trace_without_files(self, capsys):
        assert tools.main(["trace", "r", "r", "16", "4"]) == 0
        assert "parallel_write" in capsys.readouterr().out


class TestBenchCli:
    def test_checks_small(self, capsys):
        # Toy sizes keep this fast; only structural checks are stable
        # there, so just assert the command runs and prints check lines.
        rc = bench_main(["checks", "--sizes", "128", "256", "--repeats", "1"])
        out = capsys.readouterr().out
        assert "table1:" in out and "table2:" in out
        assert rc in (0, 1)  # measured orderings may wobble at toy sizes

    def test_table2_no_compare(self, capsys):
        rc = bench_main(
            ["table2", "--sizes", "128", "--repeats", "1", "--no-compare"]
        )
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "paper:" not in out

    def test_table1_renders(self, capsys):
        bench_main(["table1", "--sizes", "128", "--repeats", "1"])
        out = capsys.readouterr().out
        assert "t_w_disk" in out
        assert "128" in out
