"""Tests for the MPI-IO facade (paper §3: MPI-IO on the file model)."""

import numpy as np
import pytest

from repro import matrix_partition, round_robin
from repro.clusterfile import Clusterfile
from repro.distributions.mpi_types import contiguous, primitive, subarray, vector
from repro.mpiio import MPIFile, MPIIOError
from repro.simulation import ClusterConfig

NP = 4


def make_file(phys=None, n=64):
    fs = Clusterfile(ClusterConfig(compute_nodes=NP, io_nodes=NP))
    fs.create("f", phys or matrix_partition("b", n, n, NP))
    return fs, MPIFile(fs, "f", NP)


class TestDefaultView:
    def test_linear_bytes(self):
        fs, f = make_file()
        data = np.arange(100, dtype=np.uint8)
        f.write_at(0, 0, data)
        np.testing.assert_array_equal(f.read_at(0, 0, 100), data)
        np.testing.assert_array_equal(fs.linear_contents("f", 100), data)

    def test_different_ranks_interleave(self):
        fs, f = make_file()
        f.write_at(0, 0, np.full(10, 1, np.uint8))
        f.write_at(1, 10, np.full(10, 2, np.uint8))
        got = fs.linear_contents("f", 20)
        assert got[:10].tolist() == [1] * 10
        assert got[10:].tolist() == [2] * 10


class TestVectorViews:
    """The mpi4py tutorial's non-contiguous pattern: rank r sees every
    ``size``-th int starting at the r-th."""

    def test_interleaved_int_views(self):
        fs, f = make_file(round_robin(NP, 4), n=0)
        intt = primitive(4)
        for rank in range(NP):
            filetype = vector(count=1, blocklength=1, stride=NP, base=intt)
            filetype = filetype.resized(NP * 4)
            f.set_view(rank, rank * 4, intt, filetype)
        for rank in range(NP):
            vals = (np.arange(10, dtype=np.int32) + 100 * rank).view(np.uint8)
            f.write_at(rank, 0, vals)
        # The file interleaves the ranks' ints round-robin.
        raw = fs.linear_contents("f", NP * 4 * 10)
        ints = raw.view(np.int32).reshape(10, NP)
        for rank in range(NP):
            np.testing.assert_array_equal(
                ints[:, rank], np.arange(10, dtype=np.int32) + 100 * rank
            )
        # And each rank reads back only its own.
        for rank in range(NP):
            got = f.read_at(rank, 0, 40).view(np.int32)
            np.testing.assert_array_equal(
                got, np.arange(10, dtype=np.int32) + 100 * rank
            )


class TestSubarrayViews:
    def test_2d_block_decomposition(self):
        n = 16
        fs, f = make_file(n=n)
        # Each rank views its quadrant of an n x n byte matrix.
        for rank in range(NP):
            r, c = divmod(rank, 2)
            ft = subarray((n, n), (n // 2, n // 2), (r * n // 2, c * n // 2),
                          primitive(1))
            f.set_view(rank, 0, primitive(1), ft)
        for rank in range(NP):
            f.write_at(rank, 0, np.full((n // 2) ** 2, rank + 1, np.uint8))
        mat = fs.linear_contents("f", n * n).reshape(n, n)
        assert (mat[:8, :8] == 1).all()
        assert (mat[:8, 8:] == 2).all()
        assert (mat[8:, :8] == 3).all()
        assert (mat[8:, 8:] == 4).all()


class TestFilePointer:
    def test_sequential_writes_advance(self):
        fs, f = make_file()
        f.write(0, np.arange(10, dtype=np.uint8))
        f.write(0, np.arange(10, 20, dtype=np.uint8))
        np.testing.assert_array_equal(
            fs.linear_contents("f", 20), np.arange(20, dtype=np.uint8)
        )

    def test_seek_and_read(self):
        fs, f = make_file()
        f.write_at(0, 0, np.arange(30, dtype=np.uint8))
        f.seek(0, 10)
        np.testing.assert_array_equal(
            f.read(0, 5), np.arange(10, 15, dtype=np.uint8)
        )
        np.testing.assert_array_equal(
            f.read(0, 5), np.arange(15, 20, dtype=np.uint8)
        )

    def test_etype_units(self):
        fs, f = make_file()
        intt = primitive(4)
        f.set_view(0, 0, intt, contiguous(4, intt))
        vals = np.arange(8, dtype=np.int32)
        f.write_at(0, 0, vals.view(np.uint8))
        f.seek(0, 4)
        got = f.read(0, 4).view(np.int32)
        np.testing.assert_array_equal(got, vals[4:])


class TestCollective:
    def test_write_at_all(self):
        fs, f = make_file()
        per = 16
        for rank in range(NP):
            ft = contiguous(per, primitive(1)).resized(NP * per)
            f.set_view(rank, rank * per, primitive(1), ft)
        bufs = [np.full(per, rank + 1, np.uint8) for rank in range(NP)]
        f.write_at_all([0] * NP, bufs)
        got = fs.linear_contents("f", NP * per).reshape(NP, per)
        for rank in range(NP):
            assert (got[rank] == rank + 1).all()


class TestErrors:
    def test_bad_rank(self):
        _, f = make_file()
        with pytest.raises(MPIIOError):
            f.set_view(9, 0, primitive(1), primitive(1))

    def test_partial_etype_rejected(self):
        _, f = make_file()
        f.set_view(0, 0, primitive(4), contiguous(2, primitive(4)))
        with pytest.raises(MPIIOError):
            f.write_at(0, 0, np.zeros(5, np.uint8))
        with pytest.raises(MPIIOError):
            f.read_at(0, 0, 6)

    def test_filetype_not_multiple_of_etype(self):
        _, f = make_file()
        with pytest.raises(MPIIOError):
            f.set_view(0, 0, primitive(4), primitive(6))

    def test_negative_displacement(self):
        _, f = make_file()
        with pytest.raises(MPIIOError):
            f.set_view(0, -1, primitive(1), primitive(1))

    def test_collective_arity(self):
        _, f = make_file()
        with pytest.raises(MPIIOError):
            f.write_at_all([0], [np.zeros(1, np.uint8)])
