"""Kill-and-restart differential tests.

Two layers:

* **Real SIGKILL** — :func:`repro.durability.chaos.run_kill_restart`
  hosts the journaled service in a subprocess, kills it at a
  randomized point (mid-batch, mid-group-commit, mid-snapshot), and
  diffs recovery against a serial replay of the acknowledged-ticket
  prefix.  A few full runs here; the CI chaos job sweeps more seeds.
* **Crash simulation** — the same group-commit/recover protocol driven
  in-process over 100+ randomized nested-FALLS partitions (the
  existing ``nested_partitions()`` strategy), with the crash modeled
  as truncating a journal at an arbitrary drawn point.  Recovery must
  land on a committed prefix byte-identical to its serial replay for
  *every* partition shape and cut.
"""

import os
import shutil
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clusterfile.fs import Clusterfile
from repro.durability import DurabilityManager
from repro.durability.chaos import run_kill_restart
from repro.simulation.cluster import ClusterConfig

from ..properties.strategies import nested_partitions

NAME = "sim"


class TestRealSigkill:
    def test_time_mode_kill_recovers_acked_prefix(self):
        report, ok = run_kill_restart(3, n_ops=80, kill_mode="time")
        assert report["killed"]
        assert ok, report

    def test_acks_mode_kill_with_snapshots_recovers_acked_prefix(self):
        """Ack-triggered kill with checkpoint boundaries sprinkled in:
        kills land mid-snapshot and right after acks — the case that
        once lost acked writes to an unflushed journal header."""
        report, ok = run_kill_restart(
            5, n_ops=80, kill_mode="acks", snapshot_every=10
        )
        assert report["killed"]
        assert ok, report


def _deployment(physical):
    nodes = max(1, physical.num_elements)
    fs = Clusterfile(
        ClusterConfig(compute_nodes=nodes, io_nodes=nodes)
    )
    fs.create(NAME, physical)
    for node in range(physical.num_elements):
        fs.set_view(NAME, node, physical, element=node)
    return fs


def _workload(physical, seed, n_ops=12):
    """Deterministic ``(seq, node, offset, payload)`` ops through the
    partition's own views (each node writes its element)."""
    rng = np.random.default_rng(seed)
    length = 2 * physical.size
    ops = []
    for seq in range(n_ops):
        node = int(rng.integers(physical.num_elements))
        elen = physical.element_length(node, length)
        if elen < 1:
            continue
        offset = int(rng.integers(0, elen))
        span = int(rng.integers(1, min(24, elen - offset) + 1))
        payload = rng.integers(1, 255, size=span, dtype=np.uint8)
        ops.append((seq, node, offset, payload))
    return ops


def _apply(fs, ops):
    for _seq, node, offset, payload in ops:
        fs.write(NAME, [(node, offset, payload)])


class TestCrashSimulationProperties:
    @given(
        physical=nested_partitions(max_displacement=0),
        seed=st.integers(0, 2**16),
        victim=st.integers(0, 10**6),
        frac=st.floats(0.0, 1.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_truncated_journal_recovers_committed_prefix(
        self, physical, seed, victim, frac
    ):
        """Journal a batched workload under a random nested-FALLS
        partition, tear one journal at a random point, recover, and
        byte-compare against a serial replay of the recovered stamp's
        prefix on a journal-free deployment (the naive oracle)."""
        ops = _workload(physical, seed)
        if not ops:
            return
        root = tempfile.mkdtemp(prefix="crashsim-")
        try:
            fs = _deployment(physical)
            manager = DurabilityManager(os.path.join(root, "j"))
            manager.register_file(fs, NAME)
            for i in range(0, len(ops), 3):
                batch = ops[i : i + 3]
                _apply(fs, batch)
                manager.commit_write(
                    fs, NAME, [(s, n, o, p.size) for s, n, o, p in batch]
                )
            full_stamp = manager.last_stamp(NAME)
            manager.close()  # flush everything: the pre-crash image

            # The crash: tear one journal at an arbitrary point.
            d = manager.file_dir(NAME)
            wals = sorted(
                p for p in os.listdir(d) if p.endswith(".wal")
            )
            target = os.path.join(d, wals[victim % len(wals)])
            size = os.path.getsize(target)
            cut = int(frac * size)
            with open(target, "r+b") as fh:
                fh.truncate(cut)

            fs2 = _deployment(physical)
            fs2.unlink(NAME)
            m2 = DurabilityManager(os.path.join(root, "j"))
            report = m2.recover_into(fs2)
            m2.close()
            stamp = report[NAME]["stamp"]
            assert stamp <= full_stamp
            if cut == size:
                assert stamp == full_stamp  # no damage: nothing lost

            oracle = _deployment(physical)
            _apply(oracle, [op for op in ops if op[0] <= stamp])
            got = fs2.linear_contents(NAME)
            want = oracle.linear_contents(NAME)
            n = min(got.size, want.size)
            assert np.array_equal(got[:n], want[:n])
            assert not got[n:].any() and not want[n:].any()
        finally:
            shutil.rmtree(root, ignore_errors=True)

    @given(
        physical=nested_partitions(max_displacement=0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_clean_restart_is_lossless(self, physical, seed):
        """No damage at all: recovery must reproduce the full state and
        the full stamp for any nested partition."""
        ops = _workload(physical, seed)
        if not ops:
            return
        root = tempfile.mkdtemp(prefix="crashsim-")
        try:
            fs = _deployment(physical)
            manager = DurabilityManager(os.path.join(root, "j"))
            manager.register_file(fs, NAME)
            for i in range(0, len(ops), 2):
                batch = ops[i : i + 2]
                _apply(fs, batch)
                manager.commit_write(
                    fs, NAME, [(s, n, o, p.size) for s, n, o, p in batch]
                )
            full_stamp = manager.last_stamp(NAME)
            manager.close()

            fs2 = _deployment(physical)
            fs2.unlink(NAME)
            m2 = DurabilityManager(os.path.join(root, "j"))
            report = m2.recover_into(fs2)
            m2.close()
            assert report[NAME]["stamp"] == full_stamp
            got = fs2.linear_contents(NAME)
            want = fs.linear_contents(NAME)
            n = min(got.size, want.size)
            assert np.array_equal(got[:n], want[:n])
            assert not got[n:].any() and not want[n:].any()
        finally:
            shutil.rmtree(root, ignore_errors=True)
