"""Torn-write and corruption recovery: a real journaled workload,
damaged at every record boundary, must recover to a *committed prefix*
of itself — never raise past :class:`RecoveryError`, and never
resurrect a write whose commit record did not survive."""

import json
import os
import shutil

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.core.falls import Falls
from repro.core.partition import Partition
from repro.durability import DurabilityManager, RecoveryError
from repro.durability.journal import KIND_COMMIT, scan_journal
from repro.durability.manager import COMMIT_LOG, MANIFEST_NAME, SNAPSHOT_NAME
from repro.simulation.cluster import ClusterConfig

NPROCS = 4
CHUNK = 16
NAME = "torn"


def _cyclic(elements, chunk):
    period = elements * chunk
    return Partition(
        [Falls(e * chunk, (e + 1) * chunk - 1, period, 1)
         for e in range(elements)]
    )


def _ops(seed, n=24):
    """Deterministic ``(seq, node, offset, payload)`` ops, batched in
    threes (one group commit per batch, like the service's coalescing).
    Payloads never repeat a byte value, so a lost batch is visible."""
    rng = np.random.default_rng(seed)
    ops = []
    for seq in range(n):
        node = int(rng.integers(NPROCS))
        offset = int(rng.integers(0, 200))
        length = int(rng.integers(4, 40))
        payload = rng.integers(1, 255, size=length, dtype=np.uint8)
        ops.append((seq, node, offset, payload))
    return ops


def _fresh_fs():
    fs = Clusterfile(ClusterConfig())
    fs.create(NAME, _cyclic(NPROCS, 2 * CHUNK))
    for node in range(NPROCS):
        fs.set_view(NAME, node, _cyclic(NPROCS, CHUNK), element=node)
    return fs


def _apply(fs, ops):
    for _seq, node, offset, payload in ops:
        fs.write(NAME, [(node, offset, payload)])


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """One journaled run, closed cleanly: the pristine journal image
    every damage test mutates a copy of."""
    root = str(tmp_path_factory.mktemp("pristine") / "journal")
    fs = _fresh_fs()
    manager = DurabilityManager(root)
    manager.register_file(fs, NAME)
    ops = _ops(11)
    for i in range(0, len(ops), 3):
        batch = ops[i : i + 3]
        _apply(fs, batch)
        manager.commit_write(
            fs, NAME, [(s, n, o, p.size) for s, n, o, p in batch]
        )
    manager.close()
    return root, ops


def _recover(root):
    fs = Clusterfile(ClusterConfig())
    manager = DurabilityManager(root)
    report = manager.recover_into(fs)
    manager.close()
    return fs, report[NAME]


def _oracle(ops, stamp):
    """Serial replay of the seq-<=-stamp prefix on a journal-free
    deployment — the naive oracle recovery is diffed against."""
    fs = _fresh_fs()
    _apply(fs, [op for op in ops if op[0] <= stamp])
    return fs


def _assert_committed_prefix(root, ops, full_stamp=None):
    """Recover ``root`` and assert the one allowed outcome: a committed
    prefix, byte-identical to its serial replay."""
    fs, rep = _recover(root)
    stamp = rep["stamp"]
    if full_stamp is not None:
        assert stamp <= full_stamp
    want = _oracle(ops, stamp).linear_contents(NAME)
    got = fs.linear_contents(NAME)
    n = min(got.size, want.size)
    assert np.array_equal(got[:n], want[:n])
    assert not got[n:].any() and not want[n:].any()
    return stamp


class TestTornCommitLog:
    def test_truncation_at_every_record_boundary(self, workload, tmp_path):
        pristine, ops = workload
        commit_path = os.path.join(pristine, NAME, COMMIT_LOG)
        scan = scan_journal(commit_path, expect_kind=KIND_COMMIT)
        boundaries = [12] + [r.end for r in scan.records]
        full_stamp = max(r.stamp for r in scan.records)
        for i, cut in enumerate(boundaries):
            root = str(tmp_path / f"cut{i}")
            shutil.copytree(pristine, root)
            target = os.path.join(root, NAME, COMMIT_LOG)
            with open(target, "r+b") as fh:
                fh.truncate(cut)
            stamp = _assert_committed_prefix(root, ops, full_stamp)
            # Exactly the commits within the cut survive.
            expect = [r.stamp for r in scan.records if r.end <= cut]
            assert stamp == (max(expect) if expect else -1)

    def test_mid_record_truncation(self, workload, tmp_path):
        pristine, ops = workload
        commit_path = os.path.join(pristine, NAME, COMMIT_LOG)
        scan = scan_journal(commit_path, expect_kind=KIND_COMMIT)
        for i, rec in enumerate(scan.records):
            root = str(tmp_path / f"mid{i}")
            shutil.copytree(pristine, root)
            with open(os.path.join(root, NAME, COMMIT_LOG), "r+b") as fh:
                fh.truncate(rec.end - 3)  # tear inside record i
            stamp = _assert_committed_prefix(root, ops)
            prev = [r.stamp for r in scan.records[:i]]
            assert stamp == (max(prev) if prev else -1)

    def test_dropped_commit_never_resurrects_its_writes(
        self, workload, tmp_path
    ):
        """The data journals still hold the last batch's redo records —
        but with its commit record torn off, recovery must not apply
        them (they were never acknowledged)."""
        pristine, ops = workload
        commit_path = os.path.join(pristine, NAME, COMMIT_LOG)
        scan = scan_journal(commit_path, expect_kind=KIND_COMMIT)
        root = str(tmp_path / "drop-last")
        shutil.copytree(pristine, root)
        with open(os.path.join(root, NAME, COMMIT_LOG), "r+b") as fh:
            fh.truncate(scan.records[-2].end)
        fs, rep = _recover(root)
        assert rep["stamp"] == scan.records[-2].stamp
        # The full replay differs from the recovered bytes wherever the
        # dropped batch wrote — proving the writes were not resurrected.
        full = _oracle(ops, scan.records[-1].stamp).linear_contents(NAME)
        got = fs.linear_contents(NAME)
        n = min(got.size, full.size)
        assert not np.array_equal(got[:n], full[:n])

    def test_bit_flip_in_each_commit_record(self, workload, tmp_path):
        pristine, ops = workload
        commit_path = os.path.join(pristine, NAME, COMMIT_LOG)
        scan = scan_journal(commit_path, expect_kind=KIND_COMMIT)
        starts = [12] + [r.end for r in scan.records[:-1]]
        for i, (start, rec) in enumerate(zip(starts, scan.records)):
            root = str(tmp_path / f"flip{i}")
            shutil.copytree(pristine, root)
            target = os.path.join(root, NAME, COMMIT_LOG)
            with open(target, "r+b") as fh:
                fh.seek(start + 10)
                b = fh.read(1)
                fh.seek(start + 10)
                fh.write(bytes([b[0] ^ 0x40]))
            stamp = _assert_committed_prefix(root, ops)
            prev = [r.stamp for r in scan.records[:i]]
            assert stamp == (max(prev) if prev else -1)


class TestTornDataJournals:
    def test_truncating_a_data_journal_tears_its_commits(
        self, workload, tmp_path
    ):
        """A commit whose cut exceeds a data journal's surviving prefix
        is a torn group: recovery must stop *before* it — the committed
        prefix shrinks to the last fully covered commit."""
        pristine, ops = workload
        commit_scan = scan_journal(
            os.path.join(pristine, NAME, COMMIT_LOG),
            expect_kind=KIND_COMMIT,
        )
        full_stamp = max(r.stamp for r in commit_scan.records)
        d = os.path.join(pristine, NAME)
        for sf in sorted(
            p for p in os.listdir(d)
            if p.startswith("sf") and p.endswith(".wal")
        ):
            data_scan = scan_journal(os.path.join(d, sf))
            cuts = [12] + [r.end for r in data_scan.records] + [
                max(12, data_scan.valid_bytes - 5)
            ]
            for i, cut in enumerate(cuts):
                root = str(tmp_path / f"{sf}-{i}")
                shutil.copytree(pristine, root)
                with open(os.path.join(root, NAME, sf), "r+b") as fh:
                    fh.truncate(cut)
                _assert_committed_prefix(root, ops, full_stamp)

    def test_deleted_data_journal_recovers_snapshot_only(
        self, workload, tmp_path
    ):
        pristine, ops = workload
        root = str(tmp_path / "gone")
        shutil.copytree(pristine, root)
        os.remove(os.path.join(root, NAME, "sf0.wal"))
        # Any commit cutting sf0 above zero is torn; the survivors (if
        # any) must still be a consistent prefix.
        _assert_committed_prefix(root, ops)


class TestSnapshotAndManifestDamage:
    def test_corrupt_snapshot_raises_recovery_error_only(
        self, workload, tmp_path
    ):
        pristine, _ops = workload
        snap = os.path.join(pristine, NAME, SNAPSHOT_NAME)
        size = os.path.getsize(snap)
        for i, pos in enumerate({0, 1, 5, 12, size // 2, size - 1}):
            root = str(tmp_path / f"snap{i}")
            shutil.copytree(pristine, root)
            target = os.path.join(root, NAME, SNAPSHOT_NAME)
            with open(target, "r+b") as fh:
                fh.seek(pos)
                b = fh.read(1)
                fh.seek(pos)
                fh.write(bytes([b[0] ^ 0x01]))
            with pytest.raises(RecoveryError):
                _recover(root)

    def test_unreadable_manifest_raises_recovery_error(
        self, workload, tmp_path
    ):
        pristine, _ops = workload
        for i, junk in enumerate(["{not json", json.dumps({"epoch": 3})]):
            root = str(tmp_path / f"man{i}")
            shutil.copytree(pristine, root)
            with open(
                os.path.join(root, NAME, MANIFEST_NAME), "w"
            ) as fh:
                fh.write(junk)
            with pytest.raises(RecoveryError):
                _recover(root)

    def test_nothing_but_recovery_error_escapes(self, workload, tmp_path):
        """Fuzz whole-directory damage: for a spread of single-byte
        flips across every file under the journal root, recovery either
        succeeds with a consistent prefix or raises RecoveryError —
        no other exception type is documented."""
        pristine, ops = workload
        rng = np.random.default_rng(0)
        d = os.path.join(pristine, NAME)
        files = sorted(os.listdir(d))
        case = 0
        for fname in files:
            size = os.path.getsize(os.path.join(d, fname))
            if size == 0:
                continue
            for pos in rng.integers(0, size, size=4):
                root = str(tmp_path / f"fuzz{case}")
                case += 1
                shutil.copytree(pristine, root)
                target = os.path.join(root, NAME, fname)
                with open(target, "r+b") as fh:
                    fh.seek(int(pos))
                    b = fh.read(1)
                    fh.seek(int(pos))
                    fh.write(bytes([b[0] ^ 0x10]))
                try:
                    _assert_committed_prefix(root, ops)
                except RecoveryError:
                    pass  # the documented failure mode
