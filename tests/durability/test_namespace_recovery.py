"""Namespace persistence round-trips: the inode tree (ids, paths,
renames, lookup cache) and every file's bytes must outlive a crash
— fold -> snapshot -> restart -> replay, then diff everything."""

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.core.falls import Falls
from repro.core.partition import Partition
from repro.durability import DurabilityManager, RecoveryError
from repro.namespace import ClusterNamespace
from repro.simulation.cluster import ClusterConfig

NPROCS = 2


def _cyclic(elements, chunk):
    period = elements * chunk
    return Partition(
        [Falls(e * chunk, (e + 1) * chunk - 1, period, 1)
         for e in range(elements)]
    )


def _build(root):
    """A namespace with nesting, data, a rename and a delete — the
    pre-crash state every test recovers from."""
    fs = Clusterfile(ClusterConfig(compute_nodes=NPROCS, io_nodes=NPROCS))
    manager = DurabilityManager(root)
    cns = ClusterNamespace(fs, durability=manager)
    physical = _cyclic(NPROCS, 16)
    cns.mkdir("/proj")
    cns.mkdir("/proj/run1")
    cns.mkdir("/scratch")
    cns.create("/proj/run1/state.dat", physical)
    cns.create("/proj/run1/grid.dat", physical)
    cns.create("/scratch/tmp.dat", physical)
    rng = np.random.default_rng(9)
    for seq, path in enumerate(
        ["/proj/run1/state.dat", "/proj/run1/grid.dat"] * 3
    ):
        backing, _fid = cns.locate(path)
        cns.set_view(path, 0, physical, element=0)
        payload = rng.integers(1, 255, size=24, dtype=np.uint8)
        offset = int(rng.integers(0, 40))
        fs.write(backing, [(0, offset, payload)])
        manager.commit_write(
            fs, backing, [(seq, 0, offset, payload.size)]
        )
    # Rename a whole subtree, then delete a file: both journaled.
    cns.rename("/proj/run1", "/proj/final")
    cns.delete("/scratch/tmp.dat")
    return fs, manager, cns


def _recover(root):
    fs = Clusterfile(ClusterConfig(compute_nodes=NPROCS, io_nodes=NPROCS))
    manager = DurabilityManager(root)
    return ClusterNamespace.recover(fs, manager)


class TestNamespaceRoundTrip:
    def test_fold_and_ids_survive(self, tmp_path):
        root = str(tmp_path / "j")
        fs, manager, cns = _build(root)
        want_fold = cns.tree.fold()
        want_ids = {
            path: cns.tree.resolve(path).id for path in want_fold
        }
        manager.close()  # crash: nothing else shuts down cleanly

        rec, report = _recover(root)
        assert rec.tree.fold() == want_fold
        for path, fid in want_ids.items():
            assert rec.tree.resolve(path).id == fid, path
        assert report["namespace"]["ops_replayed"] >= 0
        assert not report["dropped_orphans"]

    def test_rename_continuity(self, tmp_path):
        """Files keep their id-derived backing names across a rename +
        crash + recovery: the renamed path resolves, the old one is
        gone, and the data follows the id, not the path."""
        root = str(tmp_path / "j")
        fs, manager, cns = _build(root)
        backing, fid = cns.locate("/proj/final/state.dat")
        want = fs.linear_contents(backing).copy()
        manager.close()

        rec, _report = _recover(root)
        assert not rec.exists("/proj/run1")
        got_backing, got_fid = rec.locate("/proj/final/state.dat")
        assert (got_backing, got_fid) == (backing, fid)
        got = rec.fs.linear_contents(got_backing)
        n = min(got.size, want.size)
        assert np.array_equal(got[:n], want[:n])
        assert not got[n:].any() and not want[n:].any()

    def test_deleted_file_stays_deleted(self, tmp_path):
        root = str(tmp_path / "j")
        fs, manager, cns = _build(root)
        manager.close()
        rec, _report = _recover(root)
        assert not rec.exists("/scratch/tmp.dat")
        assert "/scratch" in rec.tree.fold()
        # Its journal directory is gone too — no orphan resurrection.
        assert all(
            "tmp" not in name for name in rec.durability.journaled_files()
        )

    def test_id_allocation_continues_without_collision(self, tmp_path):
        root = str(tmp_path / "j")
        fs, manager, cns = _build(root)
        old_ids = {cns.tree.resolve(p).id for p in cns.tree.fold()}
        manager.close()
        rec, _report = _recover(root)
        node = rec.create("/proj/new.dat", _cyclic(NPROCS, 16))
        assert node.id not in old_ids
        assert rec.locate("/proj/new.dat")[0] == f"fid-{node.id}"

    def test_lookup_cache_correct_after_recovery(self, tmp_path):
        root = str(tmp_path / "j")
        fs, manager, cns = _build(root)
        want_fold = cns.tree.fold()
        manager.close()
        rec, _report = _recover(root)
        cache = rec.tree.cache
        base = cache.stats()
        # First resolve misses, second hits, and both return the truth.
        for path in want_fold:
            a = rec.tree.resolve(path)
            b = rec.tree.resolve(path)
            assert a is b
        stats = cache.stats()
        assert stats["hits"] > base.get("hits", 0)
        # A post-recovery rename still invalidates by prefix.
        rec.rename("/proj/final", "/proj/v2")
        assert rec.tree.resolve("/proj/v2/state.dat").is_file
        with pytest.raises(FileNotFoundError):
            rec.tree.resolve("/proj/final/state.dat")

    def test_double_restart_is_stable(self, tmp_path):
        """Recover, mutate, crash again, recover again — ids and bytes
        stay consistent across generations of the journal."""
        root = str(tmp_path / "j")
        fs, manager, cns = _build(root)
        manager.close()

        rec1, _r1 = _recover(root)
        rec1.mkdir("/gen2")
        rec1.create("/gen2/a.dat", _cyclic(NPROCS, 16))
        rec1.set_view("/gen2/a.dat", 0, _cyclic(NPROCS, 16), element=0)
        backing, _ = rec1.locate("/gen2/a.dat")
        payload = np.arange(1, 33, dtype=np.uint8)
        rec1.fs.write(backing, [(0, 0, payload)])
        rec1.durability.commit_write(
            rec1.fs, backing, [(0, 0, 0, payload.size)]
        )
        want_fold = rec1.tree.fold()
        want = rec1.fs.linear_contents(backing).copy()
        assert want.any()  # the committed write is in generation 1
        rec1.durability.close()

        rec2, _r2 = _recover(root)
        assert rec2.tree.fold() == want_fold
        got = rec2.fs.linear_contents(backing)
        n = min(got.size, want.size)
        np.testing.assert_array_equal(got[:n], want[:n])
        assert not got[n:].any() and not want[n:].any()

    def test_corrupt_tree_snapshot_raises_recovery_error(self, tmp_path):
        import os

        from repro.durability.nslog import SNAPSHOT_FILE

        root = str(tmp_path / "j")
        fs, manager, cns = _build(root)
        manager.close()
        snap = os.path.join(manager.namespace_dir(), SNAPSHOT_FILE)
        with open(snap, "r+b") as fh:
            fh.seek(6)
            b = fh.read(1)
            fh.seek(6)
            fh.write(bytes([b[0] ^ 0x02]))
        with pytest.raises(RecoveryError):
            _recover(root)
