"""Unit tests for the journal framing and the snapshot format."""

import os

import numpy as np
import pytest

from repro.durability.journal import (
    HEADER_SIZE,
    JOURNAL_MAGIC,
    KIND_COMMIT,
    KIND_DATA,
    RECORD_OVERHEAD,
    REC_WRITE,
    JournalWriter,
    RecoveryError,
    scan_journal,
)
from repro.durability.snapshot import (
    parse_snapshot,
    read_snapshot_file,
    snapshot_bytes,
    write_snapshot_file,
)


class TestJournalRoundTrip:
    def test_records_round_trip(self, tmp_path):
        path = str(tmp_path / "j.wal")
        w = JournalWriter(path, KIND_DATA, subfile=3, epoch=7)
        ends = []
        for i in range(5):
            ends.append(w.append(REC_WRITE, stamp=i, offset=i * 10,
                                 payload=bytes([i]) * (i + 1)))
        w.close()
        scan = scan_journal(path, expect_kind=KIND_DATA, expect_epoch=7)
        assert scan.header_ok
        assert scan.subfile == 3 and scan.epoch == 7
        assert [r.stamp for r in scan.records] == list(range(5))
        assert [r.offset for r in scan.records] == [0, 10, 20, 30, 40]
        assert [r.payload for r in scan.records] == [
            bytes([i]) * (i + 1) for i in range(5)
        ]
        assert [r.end for r in scan.records] == ends
        assert scan.valid_bytes == ends[-1]
        assert scan.tail_discarded == 0

    def test_header_is_durable_at_birth(self, tmp_path):
        """Regression: a journal that never receives a record must
        still have its 12-byte header on disk immediately — commit
        records cut *every* data journal at its current length, so an
        unflushed header makes every later commit look torn after a
        kill."""
        path = str(tmp_path / "empty.wal")
        w = JournalWriter(path, KIND_DATA, subfile=0, epoch=2)
        # No flush, no close — as a SIGKILL would leave it.
        assert os.path.getsize(path) == HEADER_SIZE
        scan = scan_journal(path, expect_kind=KIND_DATA, expect_epoch=2)
        assert scan.header_ok and scan.valid_bytes == HEADER_SIZE
        w.close()

    def test_records_until_cut(self, tmp_path):
        path = str(tmp_path / "j.wal")
        w = JournalWriter(path, KIND_DATA)
        e1 = w.append(REC_WRITE, 1, 0, b"aa")
        e2 = w.append(REC_WRITE, 2, 2, b"bb")
        w.close()
        scan = scan_journal(path)
        assert len(scan.records_until(e2)) == 2
        assert len(scan.records_until(e1)) == 1
        assert len(scan.records_until(e1 + 1)) == 1
        assert len(scan.records_until(HEADER_SIZE)) == 0

    def test_writer_truncates_previous_file(self, tmp_path):
        path = str(tmp_path / "j.wal")
        w = JournalWriter(path, KIND_DATA, epoch=1)
        w.append(REC_WRITE, 1, 0, b"x" * 100)
        w.close()
        w2 = JournalWriter(path, KIND_DATA, epoch=2)
        w2.close()
        scan = scan_journal(path)
        assert scan.epoch == 2 and not scan.records


class TestJournalDamage:
    def _journal(self, tmp_path, n=4):
        path = str(tmp_path / "j.wal")
        w = JournalWriter(path, KIND_DATA, epoch=1)
        ends = [w.append(REC_WRITE, i, 0, bytes([i + 1]) * 8)
                for i in range(n)]
        w.close()
        return path, w, ends

    def test_truncation_at_every_byte_drops_only_the_tail(self, tmp_path):
        pristine_path, _, ends = self._journal(tmp_path)
        pristine = open(pristine_path, "rb").read()
        path = str(tmp_path / "torn.wal")
        for cut in range(HEADER_SIZE, len(pristine) + 1):
            with open(path, "wb") as fh:
                fh.write(pristine[:cut])
            scan = scan_journal(path, expect_kind=KIND_DATA, expect_epoch=1)
            intact = [e for e in ends if e <= cut]
            assert scan.header_ok
            assert scan.valid_bytes == (intact[-1] if intact else HEADER_SIZE)
            assert len(scan.records) == len(intact)
            assert scan.tail_discarded == cut - scan.valid_bytes

    def test_bit_flip_breaks_chain_from_there(self, tmp_path):
        path, _, ends = self._journal(tmp_path)
        # Flip one byte inside the second record's payload.
        pos = ends[0] + RECORD_OVERHEAD + 3
        with open(path, "r+b") as fh:
            fh.seek(pos)
            b = fh.read(1)
            fh.seek(pos)
            fh.write(bytes([b[0] ^ 0xFF]))
        scan = scan_journal(path)
        assert len(scan.records) == 1  # everything after the flip is gone
        assert scan.valid_bytes == ends[0]
        assert scan.tail_discarded == os.path.getsize(path) - ends[0]

    def test_kind_and_epoch_mismatch_invalidate_whole_file(self, tmp_path):
        path, _, _ends = self._journal(tmp_path)
        wrong_kind = scan_journal(path, expect_kind=KIND_COMMIT)
        assert not wrong_kind.header_ok and not wrong_kind.records
        assert wrong_kind.tail_discarded == os.path.getsize(path)
        wrong_epoch = scan_journal(path, expect_kind=KIND_DATA, expect_epoch=9)
        assert not wrong_epoch.header_ok and not wrong_epoch.records

    def test_bad_magic_and_short_file(self, tmp_path):
        path = str(tmp_path / "j.wal")
        with open(path, "wb") as fh:
            fh.write(b"NOPE" + bytes(HEADER_SIZE - 4))
        assert not scan_journal(path).header_ok
        with open(path, "wb") as fh:
            fh.write(JOURNAL_MAGIC[:2])
        scan = scan_journal(path)
        assert not scan.header_ok and scan.tail_discarded == 2
        assert not scan_journal(str(tmp_path / "absent.wal")).header_ok


class TestSnapshotFormat:
    def test_round_trip(self, tmp_path):
        payload = np.arange(257, dtype=np.uint8) % 255
        meta = {"length": 257, "z": [1, 2]}
        blob = snapshot_bytes(payload, meta)
        got, gmeta = parse_snapshot(blob)
        np.testing.assert_array_equal(got, payload)
        assert gmeta == {"length": 257, "z": [1, 2]}
        path = str(tmp_path / "s.bin")
        write_snapshot_file(path, payload, meta)
        got2, gmeta2 = read_snapshot_file(path)
        np.testing.assert_array_equal(got2, payload)
        assert gmeta2 == gmeta

    def test_bytes_depend_only_on_payload_and_meta(self):
        payload = np.arange(64, dtype=np.uint8)
        a = snapshot_bytes(payload, {"b": 1, "a": 2})
        b = snapshot_bytes(payload.copy(), {"a": 2, "b": 1})
        assert a == b  # canonical meta JSON: key order is irrelevant

    def test_every_header_byte_flip_raises_recovery_error(self):
        payload = np.arange(64, dtype=np.uint8)
        blob = bytearray(snapshot_bytes(payload, {"length": 64}))
        for pos in range(len(blob)):
            damaged = bytearray(blob)
            damaged[pos] ^= 0x01
            with pytest.raises(RecoveryError):
                parse_snapshot(bytes(damaged))

    def test_truncation_raises_recovery_error(self):
        blob = snapshot_bytes(np.arange(64, dtype=np.uint8), {})
        for cut in (0, 4, 10, len(blob) // 2, len(blob) - 1):
            with pytest.raises(RecoveryError):
                parse_snapshot(blob[:cut])

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "s.bin")
        write_snapshot_file(path, np.zeros(8, dtype=np.uint8), {})
        assert os.listdir(str(tmp_path)) == ["s.bin"]
