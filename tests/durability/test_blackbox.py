"""Post-mortem forensics under real SIGKILL.

One full kill-restart run with a kept workdir, then everything the
flight ring promises is checked against that single corpse: the ring
decodes from the mmap file alone with **zero** CRC failures, the
acked-ticket prefix is covered by ``op_finish`` events, the ``tools
blackbox`` CLI renders the same timeline, and the ``/stats`` payload
grows its ``durability`` section.  The Prometheus round-trip for the
``durability.*`` families rides on the recovery the run performed.
"""

import json
import os

import pytest

from repro import tools
from repro.durability.chaos import run_kill_restart
from repro.obs import metrics as obs_metrics
from repro.obs.forensics import decode_ring, finished_ops, reconstruct
from repro.obs.live import stats_payload
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import parse_prometheus_text, render_prometheus


@pytest.fixture(scope="module")
def kill_run(tmp_path_factory):
    """One SIGKILL run whose workdir (ring, journals, ack log) we keep."""
    workdir = str(tmp_path_factory.mktemp("chaos"))
    obs_metrics.reset_metrics("durability")
    report, ok = run_kill_restart(
        11, n_ops=120, kill_mode="acks", snapshot_every=16, workdir=workdir
    )
    return workdir, report, ok


class TestSigkillForensics:
    def test_run_recovers_and_blackbox_is_ok(self, kill_run):
        _, report, ok = kill_run
        assert report["killed"]
        assert ok, report
        assert report["blackbox_ok"], report["blackbox"]

    def test_ring_decodes_with_zero_crc_failures(self, kill_run):
        """The ISSUE's acceptance bar: after SIGKILL under load the
        mmap ring alone reconstructs the victim's final operations and
        a torn record is detected, never misparsed.  A single 64-byte
        slot store leaves no torn slot at all in practice."""
        workdir, report, _ = kill_run
        ring = os.path.join(workdir, "flight.ring")
        dump = decode_ring(ring)
        assert dump.torn == 0
        assert dump.events, "ring captured nothing before the kill"
        # Every record re-verified its CRC during decode; the victim's
        # pid is stamped in the header.
        assert dump.pid != os.getpid()

    def test_every_ack_has_an_op_finish_in_the_ring(self, kill_run):
        """Ticket resolution happens *after* the op_finish record, so
        the ack log can never be ahead of the ring (modulo wrap)."""
        workdir, report, _ = kill_run
        dump = decode_ring(os.path.join(workdir, "flight.ring"))
        finished = finished_ops(dump)
        acked = report["acked"]
        assert sum(acked.values()) > 0, "kill landed before any ack"
        for fname, count in acked.items():
            if count == 0:
                continue
            have = finished.get(fname, set())
            assert have, f"{fname}: acks with no op_finish events"

    def test_reconstruction_names_final_operations(self, kill_run):
        workdir, _, _ = kill_run
        dump = decode_ring(os.path.join(workdir, "flight.ring"))
        recon = reconstruct(dump, last=16)
        assert recon["events"] == len(dump.events)
        assert recon["torn"] == 0
        assert recon["timeline"]
        newest = recon["timeline"][-1]
        assert newest["seq"] == dump.events[-1].seq
        assert newest["t_rel_s"] == 0.0
        # Timestamps are relative to the moment of death, so they run
        # from most-negative up to zero.
        rels = [e["t_rel_s"] for e in recon["timeline"]]
        assert rels == sorted(rels)

    def test_per_file_recovery_detail_in_report(self, kill_run):
        _, report, _ = kill_run
        for name, verdict in report["files_report"].items():
            assert "records_replayed" in verdict
            assert "tail_bytes_discarded" in verdict
            assert verdict["recovery_time_s"] >= 0.0


class TestBlackboxCli:
    def test_render_and_json_agree(self, kill_run, capsys):
        workdir, _, _ = kill_run
        ring = os.path.join(workdir, "flight.ring")
        assert tools.main(["blackbox", ring, "--last", "8"]) == 0
        text = capsys.readouterr().out
        assert "flight ring" in text
        assert "final" in text
        assert tools.main(["blackbox", ring, "--json"]) == 0
        recon = json.loads(capsys.readouterr().out)
        assert recon["torn"] == 0
        assert recon["events"] > 0

    def test_directory_scan_finds_rings(self, kill_run, capsys):
        workdir, _, _ = kill_run
        assert tools.main(["blackbox", workdir, "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        recons = out if isinstance(out, list) else [out]
        assert any(r["events"] > 0 for r in recons)

    def test_missing_ring_exits_nonzero(self, tmp_path):
        assert tools.main(["blackbox", str(tmp_path / "nope.ring")]) == 2

    def test_chaos_cli_prints_blackbox_summary(self, capsys):
        rc = tools.main(
            ["chaos", "--kill-restart", "--seeds", "1", "--kill-ops", "60"]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "blackbox" in out
        assert "recovered_in=" in out


class TestStatsDurabilitySection:
    def test_section_appears_with_durability_counters(self):
        reg = MetricsRegistry()
        reg.counter("durability.journal.records").inc(7)
        reg.counter("durability.journal.bytes").inc(512)
        reg.counter("durability.journal.commits").inc(3)
        reg.counter("durability.recovery.records_replayed").inc(5)
        hist = reg.histogram("durability.commit_s")
        for v in (0.001, 0.002, 0.004):
            hist.observe(v)
        payload = stats_payload(registry=reg)
        d = payload["durability"]
        assert d["journal"] == {"records": 7, "bytes": 512, "commits": 3}
        assert d["recovery"]["records_replayed"] == 5
        assert d["commit_s"]["count"] == 3
        assert d["commit_s"]["p50"] > 0.0

    def test_section_absent_without_durability_metrics(self):
        reg = MetricsRegistry()
        reg.counter("service.ops").inc()
        assert "durability" not in stats_payload(registry=reg)


class TestPrometheusDurabilityFamilies:
    def test_recovery_counters_round_trip(self, kill_run):
        """The chaos run recovered in-process, so the global registry
        carries durability.* families; they must survive the strict
        exposition parser."""
        _, report, _ = kill_run
        families = parse_prometheus_text(render_prometheus())
        replayed = families["repro_durability_recovery_records_replayed_total"]
        assert replayed["type"] == "counter"
        assert replayed["samples"][0][2] >= 0.0
        hist = families["repro_durability_recovery_time_s"]
        assert hist["type"] == "histogram"
