"""Serial-equivalence of snapshot bytes (the scda property).

The same logical file — whatever node count stored it, whatever
partition scattered it, whatever executor mode moved the bytes —
must emit *byte-identical* snapshot files.  Every test here builds one
logical byte sequence many different ways and compares the raw
snapshot bytes with ``==``, no parsing involved.
"""

import os

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.core.falls import Falls
from repro.core.partition import Partition
from repro.durability import DurabilityManager
from repro.durability.manager import SNAPSHOT_NAME
from repro.redistribution.executor import (
    execute_plan,
    execute_plan_windowed,
)
from repro.redistribution.plan_cache import get_plan
from repro.simulation.cluster import ClusterConfig

LENGTH = 768


def _data():
    # All bytes nonzero: every configuration sees the same natural
    # file length (a zero tail would be indistinguishable from a hole).
    return (
        np.random.default_rng(42).integers(1, 255, LENGTH, dtype=np.uint8)
    )


def _cyclic(elements, chunk):
    period = elements * chunk
    return Partition(
        [Falls(e * chunk, (e + 1) * chunk - 1, period, 1)
         for e in range(elements)]
    )


def _linear():
    return Partition([Falls(0, LENGTH - 1, LENGTH, 1)])


def _pieces(physical, mode):
    """Distribute the logical bytes under ``physical`` with the chosen
    executor mode — all three must agree bit-for-bit."""
    plan = get_plan(_linear(), physical)
    src = [_data()]
    if mode == "serial":
        return execute_plan(plan, src, LENGTH, parallel=False)
    if mode == "parallel":
        return execute_plan(plan, src, LENGTH, parallel=True)
    if mode == "windowed":
        return execute_plan_windowed(plan, src, LENGTH, window_bytes=100)
    raise AssertionError(mode)


def _snapshot_via_manager(tmp_path, tag, physical, mode,
                          workers_mode="thread"):
    """Store the logical bytes under one configuration and checkpoint;
    returns the raw snapshot bytes."""
    fs = Clusterfile(
        ClusterConfig(
            compute_nodes=max(1, physical.num_elements),
            io_nodes=max(1, physical.num_elements),
        ),
        workers_mode=workers_mode,
        workers=2,
    )
    try:
        cfile = fs.create("f", physical)
        for s, piece in enumerate(_pieces(physical, mode)):
            if piece.size:
                cfile.stores[s].view(0, piece.size - 1)[:] = piece
        manager = DurabilityManager(str(tmp_path / tag))
        manager.register_file(fs, "f")
        manager.close()
        with open(
            os.path.join(manager.file_dir("f"), SNAPSHOT_NAME), "rb"
        ) as fh:
            return fh.read()
    finally:
        fs.close()


class TestSnapshotSerialEquivalence:
    def test_identical_across_nodes_partitions_and_modes(self, tmp_path):
        """1/2/4 nodes x serial/parallel/windowed: one snapshot byte
        sequence."""
        blobs = {}
        for nodes, chunk in ((1, LENGTH), (2, 32), (4, 16), (4, 48)):
            for mode in ("serial", "parallel", "windowed"):
                tag = f"n{nodes}-c{chunk}-{mode}"
                blobs[tag] = _snapshot_via_manager(
                    tmp_path, tag, _cyclic(nodes, chunk), mode
                )
        reference = next(iter(blobs.values()))
        for tag, blob in blobs.items():
            assert blob == reference, tag

    def test_identical_across_thread_and_process_executors(self, tmp_path):
        a = _snapshot_via_manager(
            tmp_path, "thr", _cyclic(2, 32), "serial",
            workers_mode="thread",
        )
        b = _snapshot_via_manager(
            tmp_path, "proc", _cyclic(4, 16), "parallel",
            workers_mode="process",
        )
        assert a == b

    def test_view_writes_match_direct_store_fill(self, tmp_path):
        """Writing through per-node views (the service path) and filling
        stores directly (the restore path) snapshot identically."""
        data = _data()
        physical = _cyclic(4, 16)
        fs = Clusterfile(ClusterConfig(compute_nodes=4, io_nodes=4))
        fs.create("f", physical)
        for node in range(4):
            fs.set_view("f", node, physical, element=node)
            elen = physical.element_length(node, LENGTH)
            piece = np.asarray(
                [data[i] for i in range(LENGTH)
                 if (i // 16) % 4 == node], dtype=np.uint8
            )
            assert piece.size == elen
            fs.write("f", [(node, 0, piece)])
        manager = DurabilityManager(str(tmp_path / "views"))
        manager.register_file(fs, "f")
        manager.close()
        via_views = open(
            os.path.join(manager.file_dir("f"), SNAPSHOT_NAME), "rb"
        ).read()
        direct = _snapshot_via_manager(
            tmp_path, "direct", _cyclic(2, 32), "serial"
        )
        assert via_views == direct

    def test_snapshot_survives_relayout_unchanged(self, tmp_path):
        """A re-layout to a different physical partition must not change
        the snapshot bytes — the payload is logical, the partition only
        lives in the manifest."""
        from repro.clusterfile.relayout import relayout

        fs = Clusterfile(ClusterConfig(compute_nodes=4, io_nodes=4))
        physical = _cyclic(4, 16)
        cfile = fs.create("f", physical)
        for s, piece in enumerate(_pieces(physical, "serial")):
            if piece.size:
                cfile.stores[s].view(0, piece.size - 1)[:] = piece
        manager = DurabilityManager(str(tmp_path / "rl"))
        manager.register_file(fs, "f")
        snap = os.path.join(manager.file_dir("f"), SNAPSHOT_NAME)
        before = open(snap, "rb").read()
        relayout(fs, "f", _cyclic(2, 48))
        manager.checkpoint(fs, "f")
        after = open(snap, "rb").read()
        manager.close()
        assert before == after


class TestCheckpointStoreSnapshots:
    def _store_blob(self, tmp_path, tag, partition, nodes,
                    workers_mode="thread"):
        from repro.apps.checkpoint import CheckpointStore
        from repro.redistribution.executor import distribute

        data = _data()
        store = CheckpointStore(
            ClusterConfig(compute_nodes=nodes, io_nodes=nodes),
            workers_mode=workers_mode,
            workers=2,
        )
        try:
            pieces = distribute(data, partition)
            store.save("ck", pieces, partition, (LENGTH,), np.uint8)
            path = str(tmp_path / f"{tag}.snap")
            store.export_snapshot("ck", path)
            return open(path, "rb").read()
        finally:
            store.close()

    def test_export_identical_across_writer_configs(self, tmp_path):
        blobs = [
            self._store_blob(tmp_path, "a", _cyclic(1, LENGTH), 1),
            self._store_blob(tmp_path, "b", _cyclic(2, 32), 2),
            self._store_blob(tmp_path, "c", _cyclic(4, 16), 4),
            self._store_blob(
                tmp_path, "d", _cyclic(4, 48), 4, workers_mode="process"
            ),
        ]
        assert all(b == blobs[0] for b in blobs)

    def test_import_round_trip(self, tmp_path):
        from repro.apps.checkpoint import CheckpointStore
        from repro.durability import RecoveryError
        from repro.redistribution.executor import distribute

        data = _data()
        src = CheckpointStore(ClusterConfig(compute_nodes=2, io_nodes=2))
        dst = CheckpointStore(ClusterConfig(compute_nodes=4, io_nodes=4))
        try:
            partition = _cyclic(2, 32)
            src.save(
                "ck", distribute(data, partition), partition,
                (LENGTH,), np.uint8,
            )
            path = str(tmp_path / "x.snap")
            src.export_snapshot("ck", path)
            arr = dst.import_snapshot(path, "ck2")
            np.testing.assert_array_equal(arr, data)
            np.testing.assert_array_equal(dst.load_array("ck2"), data)
            # A damaged portable snapshot raises the documented error.
            with open(path, "r+b") as fh:
                fh.seek(20)
                b = fh.read(1)
                fh.seek(20)
                fh.write(bytes([b[0] ^ 0x01]))
            with pytest.raises(RecoveryError):
                dst.import_snapshot(path, "ck3")
        finally:
            src.close()
            dst.close()
