"""Tests for layout serialization."""

import json

import pytest
from hypothesis import given, settings

from repro import Falls, Partition, matrix_partition, round_robin
from repro.core.pitfalls import Pitfalls
from repro.core.serialize import (
    falls_from_obj,
    falls_to_obj,
    partition_from_json,
    partition_from_obj,
    partition_to_json,
    partition_to_obj,
    pitfalls_from_obj,
    pitfalls_to_obj,
)

from ..properties.strategies import any_partition, nested_falls


class TestFallsRoundtrip:
    def test_leaf(self):
        f = Falls(3, 5, 6, 4)
        assert falls_from_obj(falls_to_obj(f)) == f
        assert falls_to_obj(f) == [3, 5, 6, 4]

    def test_nested(self):
        f = Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),))
        obj = falls_to_obj(f)
        assert obj == [0, 3, 8, 2, [[0, 0, 2, 2]]]
        assert falls_from_obj(obj) == f

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            falls_from_obj([1, 2])
        with pytest.raises(ValueError):
            falls_from_obj("nope")

    def test_invalid_values_rejected_on_load(self):
        with pytest.raises(ValueError):
            falls_from_obj([5, 3, 6, 1])  # r < l

    @given(nested_falls())
    @settings(max_examples=100)
    def test_property_roundtrip(self, f):
        assert falls_from_obj(falls_to_obj(f)) == f


class TestPartitionRoundtrip:
    def test_matrix_layouts(self):
        for layout in "rcb":
            p = matrix_partition(layout, 16, 16, 4)
            text = partition_to_json(p)
            back = partition_from_json(text)
            assert back == p

    def test_displacement_preserved(self):
        p = round_robin(3, 4, displacement=7)
        assert partition_from_json(partition_to_json(p)).displacement == 7

    def test_json_is_plain(self):
        p = round_robin(2, 2)
        obj = json.loads(partition_to_json(p, indent=2))
        assert obj["format"] == 1
        # Single-block FALLS canonicalise the stride to the block length.
        assert obj["elements"] == [[[0, 1, 2, 1]], [[2, 3, 2, 1]]]

    def test_corrupt_metadata_fails_loudly(self):
        p = round_robin(2, 2)
        obj = partition_to_obj(p)
        obj["elements"][0][0][1] = 99  # element now escapes the pattern
        with pytest.raises(Exception):
            partition_from_obj(obj)

    def test_version_check(self):
        obj = partition_to_obj(round_robin(2, 2))
        obj["format"] = 42
        with pytest.raises(ValueError):
            partition_from_obj(obj)

    def test_not_a_partition(self):
        with pytest.raises(ValueError):
            partition_from_obj({"nope": 1})

    @given(any_partition())
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, p):
        assert partition_from_json(partition_to_json(p)) == p


class TestPitfallsRoundtrip:
    def test_flat(self):
        pf = Pitfalls(0, 1, 8, 2, 2, 4)
        assert pitfalls_from_obj(pitfalls_to_obj(pf)) == pf

    def test_nested(self):
        pf = Pitfalls(0, 3, 8, 2, 4, 2, (Pitfalls(0, 0, 2, 2, 0, 1),))
        assert pitfalls_from_obj(pitfalls_to_obj(pf)) == pf

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            pitfalls_from_obj([1, 2, 3])
