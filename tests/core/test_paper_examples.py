"""Executable versions of every worked example and figure in the paper.

Each test cites the figure/section it reproduces; together they pin the
implementation to the paper's published semantics.
"""

import numpy as np
import pytest

from repro.core import (
    Falls,
    FallsSet,
    Partition,
    cut_falls,
    intersect_elements,
    intersect_falls,
    map_offset,
    project,
    unmap_offset,
)
from repro.core.indexset import falls_indices, falls_set_indices


class TestFigure1:
    """Figure 1: the FALLS (3, 5, 6, n) drawn over offsets 0..31."""

    def test_segments(self):
        f = Falls(3, 5, 6, 5)
        segs = [(s.start, s.stop) for s in f.leaf_segments()]
        assert segs == [(3, 5), (9, 11), (15, 17), (21, 23), (27, 29)]

    def test_geometry(self):
        f = Falls(3, 5, 6, 5)
        assert f.block_length == 3
        assert f.size() == 15
        assert f.extent_stop == 29

    def test_line_segment_as_falls(self):
        """Section 4: a line segment (l, r) is the FALLS (l, r, r-l+1, 1)."""
        f = Falls(3, 5, 3, 1)
        assert list(falls_indices(f)) == [3, 4, 5]


class TestFigure2:
    """Figure 2: nested FALLS (0, 3, 8, 2, {(0, 0, 2, 2)})."""

    FALLS = Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),))

    def test_size_is_four(self):
        # "the size of the nested FALLS from figure 2 is 4"
        assert self.FALLS.size() == 4

    def test_selected_bytes(self):
        assert list(falls_indices(self.FALLS)) == [0, 2, 8, 10]

    def test_outer_inner_structure(self):
        assert self.FALLS.flat() == Falls(0, 3, 8, 2)
        assert self.FALLS.inner == (Falls(0, 0, 2, 2),)
        assert self.FALLS.height() == 2


class TestFigure3:
    """Figure 3 / §6.1: file with displacement 2 partitioned into three
    subfiles by FALLS (0,1,6,1), (2,3,6,1), (4,5,6,1)."""

    @pytest.fixture()
    def partition(self):
        return Partition(
            [Falls(0, 1, 6, 1), Falls(2, 3, 6, 1), Falls(4, 5, 6, 1)],
            displacement=2,
        )

    def test_pattern_size_is_six(self, partition):
        assert partition.size == 6

    def test_map_file_offset_10_to_subfile_1_offset_2(self, partition):
        # "the byte at file offset 10 maps on the byte with subfile
        # offset 2 (MAP(10) = 2)"
        assert map_offset(partition, 1, 10) == 2

    def test_reverse_map(self, partition):
        # "... and vice-versa (MAP^{-1}(2) = 10)"
        assert unmap_offset(partition, 1, 2) == 10

    def test_closed_form_formula(self, partition):
        # §6.1 gives MAP_S(x) = ((x-2) div 6)*2 + (x-2) mod 6 for subfile 0.
        for x in (2, 3, 8, 9, 14, 15, 20, 21):
            assert map_offset(partition, 0, x) == ((x - 2) // 6) * 2 + (x - 2) % 6

    def test_offset_5_does_not_map_on_subfile_0(self, partition):
        # "the byte at file offset 5 doesn't map on partition element 0"
        from repro.core import MappingError

        with pytest.raises(MappingError):
            map_offset(partition, 0, 5)

    def test_next_and_previous_byte_maps(self, partition):
        # "the previous map of byte at file offset 5 on partition element 0
        # is the byte at offset 1 and the next map is the byte at offset 2"
        assert map_offset(partition, 0, 5, mode="prev") == 1
        assert map_offset(partition, 0, 5, mode="next") == 2

    def test_map_inverse_roundtrip(self, partition):
        # §6.2: MAP^{-1}(MAP(x)) = x and MAP(MAP^{-1}(y)) = y.
        for e in range(3):
            for y in range(12):
                x = unmap_offset(partition, e, y)
                assert map_offset(partition, e, x) == y


class TestCutFallsExample:
    """§7: cutting the figure-1 FALLS (3,5,6,5) between 4 and 28 yields
    {(0,1,2,1), (5,7,6,3), (23,24,2,1)} relative to 4."""

    def test_cut(self):
        pieces = cut_falls(Falls(3, 5, 6, 5), 4, 28)
        assert pieces == [
            Falls(0, 1, 2, 1),
            Falls(5, 7, 6, 3),
            Falls(23, 24, 2, 1),
        ]

    def test_cut_preserves_bytes(self):
        f = Falls(3, 5, 6, 5)
        pieces = cut_falls(f, 4, 28)
        got = np.sort(np.concatenate([falls_indices(p) + 4 for p in pieces]))
        want = falls_indices(f)
        want = want[(want >= 4) & (want <= 28)]
        np.testing.assert_array_equal(got, want)


class TestFigure4:
    """Figure 4: flat and nested intersection with projections."""

    def test_flat_intersect(self):
        # "INTERSECT-FALLS((0,7,16,2), (0,3,8,4)) = (0,3,16,2)"
        assert intersect_falls(Falls(0, 7, 16, 2), Falls(0, 3, 8, 4)) == [
            Falls(0, 3, 16, 2)
        ]

    @pytest.fixture()
    def partitions(self):
        # Logical partition: view V = {(0,7,16,2,{(0,1,4,2)})} plus two
        # complementary views tiling the 32-byte pattern.
        view = Partition(
            [
                FallsSet([Falls(0, 7, 16, 2, (Falls(0, 1, 4, 2),))]),
                FallsSet([Falls(0, 7, 16, 2, (Falls(2, 3, 4, 2),))]),
                FallsSet([Falls(8, 15, 16, 2)]),
            ]
        )
        # Physical partition: subfile S = {(0,3,8,4,{(0,0,2,2)})} plus
        # complements.
        phys = Partition(
            [
                FallsSet([Falls(0, 3, 8, 4, (Falls(0, 0, 2, 2),))]),
                FallsSet([Falls(0, 3, 8, 4, (Falls(1, 1, 2, 2),))]),
                FallsSet([Falls(4, 7, 8, 4)]),
            ]
        )
        return view, phys

    def test_intersection_bytes(self, partitions):
        view, phys = partitions
        inter = intersect_elements(view, 0, phys, 0)
        starts, lengths = inter.segments_in(0, 31)
        assert starts.tolist() == [0, 16]
        assert lengths.tolist() == [1, 1]
        assert inter.period == 32
        assert inter.displacement == 0

    def test_projections_match_paper(self, partitions):
        # "PROJ_V(V ∩ S) = (0,0,4,2) and PROJ_S(V ∩ S) = (0,0,4,2)"
        view, phys = partitions
        inter = intersect_elements(view, 0, phys, 0)
        proj_v = project(inter, view, 0)
        proj_s = project(inter, phys, 0)
        assert tuple(proj_v.falls) == (Falls(0, 0, 4, 2),)
        assert tuple(proj_s.falls) == (Falls(0, 0, 4, 2),)

    def test_intersection_size(self, partitions):
        view, phys = partitions
        inter = intersect_elements(view, 0, phys, 0)
        assert inter.size_per_period == 2


class TestSection6Composition:
    """§6.2: mapping between two partitions composes MAP and MAP^{-1}."""

    def test_identical_parameters_give_identity(self):
        # "given a physical partition into subfiles and a logical partition
        # into views, described by the same parameters, each view maps
        # exactly on a subfile"
        from repro.core import map_between

        elements = [Falls(0, 3, 12, 1), Falls(4, 7, 12, 1), Falls(8, 11, 12, 1)]
        p1 = Partition(elements)
        p2 = Partition(elements)
        for e in range(3):
            for y in range(16):
                assert map_between(p1, e, p2, e, y) == y

    def test_figure_4b_mapping(self):
        # In figure 4(b) the byte at offset 4 of the view maps on offset 4
        # of the subfile: MAP_S(MAP_V^{-1}(4)) = 4.
        from repro.core import map_between

        view = Partition(
            [
                FallsSet([Falls(0, 7, 16, 2, (Falls(0, 1, 4, 2),))]),
                FallsSet([Falls(0, 7, 16, 2, (Falls(2, 3, 4, 2),))]),
                FallsSet([Falls(8, 15, 16, 2)]),
            ]
        )
        phys = Partition(
            [
                FallsSet([Falls(0, 3, 8, 4, (Falls(0, 0, 2, 2),))]),
                FallsSet([Falls(0, 3, 8, 4, (Falls(1, 1, 2, 2),))]),
                FallsSet([Falls(4, 7, 8, 4)]),
            ]
        )
        # Byte 4 of the view is file offset 16, which is byte 4 of the
        # subfile (file bytes of S: 0,2,8,10,16,...).
        assert map_between(view, 0, phys, 0, 4, mode="exact") == 4


class TestFileModelFigure3:
    """§5: the partitioning pattern maps each byte of the file on a pair
    (subfile, position-within-subfile), applied repeatedly from the
    displacement."""

    def test_ownership(self):
        p = Partition(
            [Falls(0, 1, 6, 1), Falls(2, 3, 6, 1), Falls(4, 5, 6, 1)],
            displacement=2,
        )
        # file offsets 2..13 -> subfiles 0,0,1,1,2,2,0,0,1,1,2,2
        owners = [p.element_owning(x)[0] for x in range(2, 14)]
        assert owners == [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]

    def test_size_of_pattern(self):
        p = Partition(
            [Falls(0, 1, 6, 1), Falls(2, 3, 6, 1), Falls(4, 5, 6, 1)],
            displacement=2,
        )
        assert p.size == 6
        assert [p.element_size(i) for i in range(3)] == [2, 2, 2]
