"""Unit tests for intersection projections and periodic FALLS families."""

import numpy as np
import pytest

from repro.core import (
    ElementMapper,
    Falls,
    FallsSet,
    Partition,
    PeriodicFallsSet,
    intersect_elements,
    map_offset,
    project,
)
from repro.core.indexset import pattern_element_indices


class TestPeriodicFallsSet:
    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 0, 0)

    def test_structure_beyond_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicFallsSet(FallsSet([Falls(0, 9, 10, 1)]), 0, 8)

    def test_segments_in_basic(self):
        pfs = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 0, 4)
        starts, lengths = pfs.segments_in(0, 11)
        assert starts.tolist() == [0, 4, 8]
        assert lengths.tolist() == [2, 2, 2]

    def test_segments_in_with_displacement(self):
        pfs = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 10, 4)
        starts, _ = pfs.segments_in(0, 21)
        assert starts.tolist() == [10, 14, 18]

    def test_segments_clipped(self):
        pfs = PeriodicFallsSet(FallsSet([Falls(0, 3, 8, 1)]), 0, 8)
        starts, lengths = pfs.segments_in(2, 9)
        assert starts.tolist() == [2, 8]
        assert lengths.tolist() == [2, 2]

    def test_count_in(self):
        pfs = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 0, 4)
        assert pfs.count_in(0, 7) == 4
        assert pfs.count_in(2, 3) == 0

    def test_contiguity_check(self):
        full = PeriodicFallsSet(FallsSet([Falls(0, 7, 8, 1)]), 0, 8)
        assert full.is_contiguous_in(0, 7)
        assert full.is_contiguous_in(3, 20)  # periods touch seamlessly
        holey = PeriodicFallsSet(FallsSet([Falls(0, 3, 8, 1)]), 0, 8)
        assert holey.is_contiguous_in(0, 3)
        assert not holey.is_contiguous_in(0, 8)
        assert not holey.is_contiguous_in(2, 5)

    def test_fragment_count(self):
        pfs = PeriodicFallsSet(FallsSet([Falls(0, 0, 2, 4)]), 0, 8)
        assert pfs.fragment_count_per_period == 4
        merged = PeriodicFallsSet(
            FallsSet([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)]), 0, 4
        )
        assert merged.fragment_count_per_period == 1  # adjacent runs merge

    def test_empty(self):
        pfs = PeriodicFallsSet(FallsSet(()), 0, 4)
        assert pfs.is_empty
        starts, _ = pfs.segments_in(0, 100)
        assert starts.size == 0


def block_row_partitions():
    """Row-block physical vs column-block logical over an 8x8 byte matrix."""
    rows = Partition([Falls(16 * i, 16 * i + 15, 64, 1) for i in range(4)])
    cols = Partition([Falls(2 * i, 2 * i + 1, 8, 8) for i in range(4)])
    return rows, cols


class TestProjection:
    def test_projection_sizes(self):
        rows, cols = block_row_partitions()
        inter = intersect_elements(rows, 0, cols, 0)
        pr = project(inter, rows, 0)
        pc = project(inter, cols, 0)
        assert pr.size_per_period == inter.size_per_period
        assert pc.size_per_period == inter.size_per_period

    def test_projection_is_rank_image(self):
        rows, cols = block_row_partitions()
        inter = intersect_elements(rows, 1, cols, 2)
        mapper = ElementMapper(rows, 1)
        starts, lengths = inter.segments_in(
            inter.displacement, inter.displacement + inter.period - 1
        )
        file_offsets = np.concatenate(
            [np.arange(s, s + ln) for s, ln in zip(starts, lengths)]
        )
        want = set(mapper.map_many(file_offsets).tolist())
        proj = project(inter, rows, 1)
        got = set()
        ps, pl = proj.segments_in(proj.displacement, proj.displacement + proj.period - 1)
        for s, ln in zip(ps.tolist(), pl.tolist()):
            got.update(range(s, s + ln))
        assert got == want

    def test_projection_periodicity(self):
        rows, cols = block_row_partitions()
        inter = intersect_elements(rows, 0, cols, 0)
        proj = project(inter, cols, 0)
        # Column element owns 16 bytes per 64-byte file period.
        assert proj.period == 16

    def test_empty_projection(self):
        p = Partition([Falls(0, 3, 8, 1), Falls(4, 7, 8, 1)])
        inter = intersect_elements(p, 0, p, 1)
        proj = project(inter, p, 0)
        assert proj.is_empty

    def test_wrong_partition_rejected(self):
        rows, cols = block_row_partitions()
        inter = intersect_elements(rows, 0, cols, 0)
        odd = Partition([Falls(0, 2, 3, 1)])  # size 3 does not divide 64
        with pytest.raises(ValueError):
            project(inter, odd, 0)

    def test_identical_partitions_project_to_identity(self):
        p = Partition([Falls(0, 3, 8, 1), Falls(4, 7, 8, 1)])
        inter = intersect_elements(p, 0, p, 0)
        proj = project(inter, p, 0)
        assert proj.is_contiguous_in(0, 3)
        # The element's own bytes project onto its entire linear space:
        # one unbroken run across periods.
        starts, lengths = proj.segments_in(0, 15)
        assert starts.tolist() == [0]
        assert lengths.tolist() == [16]

    def test_projection_with_displacements(self):
        p1 = Partition([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)], displacement=0)
        p2 = Partition([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)], displacement=1)
        inter = intersect_elements(p1, 0, p2, 0)
        proj1 = project(inter, p1, 0)
        proj2 = project(inter, p2, 0)
        assert proj1.size_per_period == inter.size_per_period
        assert proj2.size_per_period == inter.size_per_period
        # Cross-check against the rank oracle for p1.
        offs = pattern_element_indices(p1.elements[0], p1.size, 0, 64)
        ranks = {int(o): r for r, o in enumerate(offs.tolist())}
        starts, lengths = inter.segments_in(inter.displacement, inter.displacement + inter.period - 1)
        want = set()
        for s, ln in zip(starts.tolist(), lengths.tolist()):
            want.update(ranks[o] for o in range(s, s + ln))
        got = set()
        ps, pl = proj1.segments_in(proj1.displacement, proj1.displacement + proj1.period - 1)
        for s, ln in zip(ps.tolist(), pl.tolist()):
            got.update(range(s, s + ln))
        assert got == want
