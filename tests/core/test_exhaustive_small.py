"""Exhaustive small-parameter sweeps for the flat algorithms.

Randomized tests sample the space; these sweep *every* FALLS in a small
parameter box, so any systematic corner case (first/last block clipping,
stride == block length, single-block degeneracies, coprime strides) is
hit deterministically.
"""

import itertools

import numpy as np
import pytest

from repro.core.cut import cut_falls
from repro.core.falls import Falls
from repro.core.indexset import falls_indices
from repro.core.intersect_flat import intersect_falls


def small_falls():
    """Every FALLS with l<=2, block length<=3, gap<=3, n<=4 (288 shapes)."""
    out = []
    for l in range(3):
        for blen in range(1, 4):
            for gap in range(4):
                for n in range(1, 5):
                    out.append(Falls(l, l + blen - 1, blen + gap, n))
    return out


SMALL = small_falls()


class TestExhaustiveCut:
    def test_every_falls_every_window(self):
        windows = [(a, b) for a in range(0, 14, 3) for b in range(a, 20, 4)]
        for f in SMALL:
            idx = falls_indices(f)
            for a, b in windows:
                want = set((idx[(idx >= a) & (idx <= b)] - a).tolist())
                got = set()
                for piece in cut_falls(f, a, b):
                    got.update(falls_indices(piece).tolist())
                assert got == want, (f, a, b)


class TestExhaustiveIntersect:
    # The full cross product is 288^2 = 83k pairs; sweep a deterministic
    # stratified quarter of it to keep the test under a few seconds.
    PAIRS = [
        (f1, f2)
        for i, f1 in enumerate(SMALL)
        for j, f2 in enumerate(SMALL)
        if (i + j) % 4 == 0
    ]

    def test_pairs_match_set_intersection(self):
        cache = {id(f): set(falls_indices(f).tolist()) for f in SMALL}
        for f1, f2 in self.PAIRS:
            got = set()
            for g in intersect_falls(f1, f2):
                got.update(falls_indices(g).tolist())
            want = cache[id(f1)] & cache[id(f2)]
            assert got == want, (f1, f2)

    def test_result_families_are_disjoint(self):
        for f1, f2 in self.PAIRS[:2000]:
            seen = set()
            for g in intersect_falls(f1, f2):
                bytes_g = set(falls_indices(g).tolist())
                assert not (bytes_g & seen), (f1, f2)
                seen |= bytes_g
