"""Unit tests for MAP / MAP^{-1}, scalar and vectorised."""

import numpy as np
import pytest

from repro.core import (
    ElementMapper,
    Falls,
    FallsSet,
    MappingError,
    Partition,
    map_between,
    map_offset,
    unmap_offset,
)
from repro.core.indexset import pattern_element_indices
from repro.core.mapping import count_below


@pytest.fixture()
def row_partition():
    """4 'subfiles' of 2 contiguous bytes each, period 8."""
    return Partition([Falls(2 * i, 2 * i + 1, 8, 1) for i in range(4)])


@pytest.fixture()
def nested_partition():
    """Two elements with nested structure, period 16."""
    return Partition(
        [
            FallsSet([Falls(0, 7, 16, 1, (Falls(0, 1, 4, 2),)), Falls(8, 11, 4, 1)]),
            FallsSet([Falls(0, 7, 16, 1, (Falls(2, 3, 4, 2),)), Falls(12, 15, 4, 1)]),
        ]
    )


def oracle_positions(partition, element, file_length=256):
    return pattern_element_indices(
        partition.elements[element],
        partition.size,
        partition.displacement,
        file_length,
    )


class TestScalarMapping:
    def test_exact_matches_oracle(self, nested_partition):
        for e in range(2):
            offs = oracle_positions(nested_partition, e, 64)
            for rank, off in enumerate(offs.tolist()):
                assert map_offset(nested_partition, e, off) == rank
                assert unmap_offset(nested_partition, e, rank) == off

    def test_exact_raises_on_foreign_offset(self, row_partition):
        with pytest.raises(MappingError):
            map_offset(row_partition, 0, 2)

    def test_offsets_before_displacement(self):
        p = Partition([Falls(0, 3, 4, 1)], displacement=10)
        with pytest.raises(MappingError):
            map_offset(p, 0, 5)
        assert map_offset(p, 0, 5, mode="next") == 0
        with pytest.raises(MappingError):
            map_offset(p, 0, 5, mode="prev")

    def test_next_prev_match_oracle(self, nested_partition):
        for e in range(2):
            offs = oracle_positions(nested_partition, e, 64).tolist()
            for x in range(48):
                nxt = [o for o in offs if o >= x]
                prv = [o for o in offs if o <= x]
                if nxt:
                    assert map_offset(nested_partition, e, x, "next") == offs.index(
                        nxt[0]
                    )
                if prv:
                    assert map_offset(nested_partition, e, x, "prev") == offs.index(
                        prv[-1]
                    )

    def test_prev_raises_when_nothing_before(self, row_partition):
        # Offset 2 belongs to element 1; element 1's first byte is at 2,
        # so 'prev' of offset 1 has nothing to map to.
        with pytest.raises(MappingError):
            map_offset(row_partition, 1, 1, mode="prev")

    def test_unmap_negative_rejected(self, row_partition):
        with pytest.raises(MappingError):
            unmap_offset(row_partition, 0, -1)

    def test_tiling_across_periods(self, row_partition):
        # Element 1 owns file bytes 2,3,10,11,18,19,...
        assert map_offset(row_partition, 1, 10) == 2
        assert map_offset(row_partition, 1, 19) == 5
        assert unmap_offset(row_partition, 1, 4) == 18


class TestCountBelow:
    def test_counts(self, nested_partition):
        e0 = nested_partition.elements[0]
        # Element 0 selects pattern offsets {0,1,4,5,8,9,10,11}.
        assert count_below(e0, 0) == 0
        assert count_below(e0, 1) == 1
        assert count_below(e0, 4) == 2
        assert count_below(e0, 16) == 8

    def test_element_length(self, nested_partition):
        # 64-byte file = 4 periods -> 32 bytes per element.
        assert nested_partition.element_length(0, 64) == 32
        # 20 bytes = 1 period + 4 bytes {16,17,18,19} -> pattern offsets
        # {0,1,2,3}: element 0 owns 0,1.
        assert nested_partition.element_length(0, 20) == 8 + 2


class TestMapBetween:
    def test_roundtrip_between_partitions(self, row_partition, nested_partition):
        # Both partitions tile contiguously, so every byte of one element
        # maps somewhere in the other partition.
        for e in range(2):
            offs = oracle_positions(nested_partition, e, 32).tolist()
            for rank, off in enumerate(offs):
                owner = off % 8 // 2  # element of row_partition owning off
                y = map_between(nested_partition, e, row_partition, owner, rank)
                assert unmap_offset(row_partition, owner, y) == off


class TestElementMapper:
    @pytest.mark.parametrize("element", [0, 1])
    def test_matches_scalar(self, nested_partition, element):
        mapper = ElementMapper(nested_partition, element)
        offs = oracle_positions(nested_partition, element, 96)
        got = mapper.map_many(offs)
        want = np.array(
            [map_offset(nested_partition, element, int(x)) for x in offs]
        )
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(mapper.unmap_many(got), offs)

    def test_next_prev_modes(self, nested_partition):
        mapper = ElementMapper(nested_partition, 0)
        xs = np.arange(0, 48, dtype=np.int64)
        for mode in ("next", "prev"):
            want = []
            keep = []
            for x in xs.tolist():
                try:
                    want.append(map_offset(nested_partition, 0, x, mode))
                    keep.append(x)
                except MappingError:
                    pass
            got = mapper.map_many(np.array(keep, dtype=np.int64), mode)
            np.testing.assert_array_equal(got, np.array(want))

    def test_exact_raises(self, row_partition):
        mapper = ElementMapper(row_partition, 0)
        with pytest.raises(MappingError):
            mapper.map_many(np.array([2], dtype=np.int64))

    def test_element_size(self, nested_partition):
        assert ElementMapper(nested_partition, 0).element_size == 8

    def test_map_one(self, row_partition):
        mapper = ElementMapper(row_partition, 1)
        assert mapper.map_one(10) == 2
        assert mapper.unmap_one(2) == 10

    def test_displacement_handling(self):
        p = Partition([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)], displacement=3)
        mapper = ElementMapper(p, 0)
        # Element 0 owns file bytes 3,4,7,8,11,12...
        np.testing.assert_array_equal(
            mapper.map_many(np.array([3, 4, 7, 8, 11])), np.array([0, 1, 2, 3, 4])
        )
        np.testing.assert_array_equal(
            mapper.unmap_many(np.array([0, 1, 2, 3, 4])), np.array([3, 4, 7, 8, 11])
        )
