"""Unit tests for the FALLS data structures."""

import pytest

from repro.core.falls import (
    Falls,
    FallsSet,
    LineSegment,
    falls_from_segment,
    is_ordered_layout,
)


class TestLineSegment:
    def test_length(self):
        assert LineSegment(3, 5).length == 3
        assert LineSegment(7, 7).length == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            LineSegment(5, 3)
        with pytest.raises(ValueError):
            LineSegment(-1, 3)

    def test_shift(self):
        assert LineSegment(3, 5).shifted(10) == LineSegment(13, 15)

    def test_overlap_and_intersection(self):
        a = LineSegment(0, 5)
        b = LineSegment(4, 9)
        c = LineSegment(6, 9)
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert a.intersection(b) == LineSegment(4, 5)
        assert a.intersection(c) is None


class TestFallsValidation:
    def test_basic(self):
        f = Falls(0, 3, 8, 2)
        assert f.block_length == 4
        assert f.size() == 8
        assert f.span == 12
        assert f.extent_stop == 11

    def test_single_block_stride_canonicalised(self):
        assert Falls(3, 5, 99, 1) == Falls(3, 5, 3, 1)
        assert Falls(3, 5, 99, 1).s == 3

    def test_negative_left_rejected(self):
        with pytest.raises(ValueError):
            Falls(-1, 3, 8, 2)

    def test_r_before_l_rejected(self):
        with pytest.raises(ValueError):
            Falls(5, 3, 8, 2)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            Falls(0, 3, 8, 0)

    def test_overlapping_stride_rejected(self):
        with pytest.raises(ValueError):
            Falls(0, 7, 4, 2)  # stride 4 < block length 8

    def test_inner_beyond_block_rejected(self):
        with pytest.raises(ValueError):
            Falls(0, 3, 8, 2, (Falls(0, 4, 8, 1),))  # inner longer than block

    def test_inner_unsorted_rejected(self):
        with pytest.raises(ValueError):
            Falls(0, 9, 16, 2, (Falls(4, 5, 6, 1), Falls(0, 1, 6, 1)))


class TestFallsDerived:
    def test_nested_size(self):
        f = Falls(0, 9, 16, 3, (Falls(0, 1, 4, 2),))
        assert f.size() == 3 * 4

    def test_heights(self):
        leaf = Falls(0, 3, 8, 2)
        assert leaf.height() == 1
        two = Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),))
        assert two.height() == 2
        three = Falls(0, 15, 32, 2, (Falls(0, 7, 8, 2, (Falls(0, 1, 4, 2),)),))
        assert three.height() == 3

    def test_uniform_depth(self):
        mixed = Falls(
            0, 15, 32, 1, (Falls(0, 3, 8, 1, (Falls(0, 0, 2, 2),)), Falls(8, 11, 8, 1))
        )
        assert not mixed.has_uniform_depth()
        assert Falls(0, 3, 8, 2).has_uniform_depth()

    def test_leaf_segment_count(self):
        f = Falls(0, 9, 16, 3, (Falls(0, 1, 4, 2),))
        assert f.leaf_segment_count() == 6
        assert len(list(f.leaf_segments())) == 6

    def test_contiguous(self):
        assert Falls(0, 7, 8, 1).is_contiguous
        assert Falls(0, 3, 4, 4).is_contiguous  # adjacent blocks
        assert not Falls(0, 3, 5, 4).is_contiguous
        full_inner = Falls(0, 7, 8, 1, (Falls(0, 7, 8, 1),))
        assert full_inner.is_contiguous
        holey_inner = Falls(0, 7, 8, 1, (Falls(0, 3, 8, 1),))
        assert not holey_inner.is_contiguous

    def test_shifted(self):
        f = Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),))
        g = f.shifted(5)
        assert (g.l, g.r) == (5, 8)
        assert g.inner == f.inner  # inner stays block-relative

    def test_flat_strips_inner(self):
        f = Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),))
        assert f.flat() == Falls(0, 3, 8, 2)

    def test_falls_from_segment(self):
        assert falls_from_segment(LineSegment(3, 5)) == Falls(3, 5, 3, 1)


class TestFallsSet:
    def test_size_sums(self):
        s = FallsSet([Falls(0, 1, 6, 2), Falls(14, 15, 4, 1)])
        assert s.size() == 6

    def test_sorted_required(self):
        with pytest.raises(ValueError):
            FallsSet([Falls(10, 11, 4, 1), Falls(0, 1, 6, 2)])

    def test_interleaved_allowed_but_not_ordered(self):
        a = Falls(0, 1, 16, 2)
        b = Falls(4, 5, 16, 2)
        s = FallsSet([a, b])  # footprints interleave: 0..17 and 4..21
        assert not s.is_ordered()
        assert is_ordered_layout([Falls(0, 1, 6, 2), Falls(14, 15, 4, 1)])

    def test_interleaved_leaf_segments_sorted(self):
        s = FallsSet([Falls(0, 1, 16, 2), Falls(4, 5, 16, 2)])
        starts = [seg.start for seg in s.leaf_segments()]
        assert starts == sorted(starts) == [0, 4, 16, 20]

    def test_extents(self):
        s = FallsSet([Falls(0, 1, 16, 2), Falls(4, 5, 16, 2)])
        assert s.extent_start == 0
        assert s.extent_stop == 21

    def test_empty(self):
        s = FallsSet(())
        assert s.is_empty
        assert s.size() == 0
        assert s.height() == 0
        assert s.is_contiguous()

    def test_contiguity(self):
        assert FallsSet([Falls(0, 3, 4, 1), Falls(4, 7, 4, 1)]).is_contiguous()
        assert not FallsSet([Falls(0, 3, 4, 1), Falls(5, 7, 3, 1)]).is_contiguous()
