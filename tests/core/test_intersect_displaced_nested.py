"""Nested patterns x displacement misalignment: the PREPROCESS rotation
path with real tree structure, against the byte oracle."""

import math

import numpy as np
import pytest

from repro.core import intersect_elements, project
from repro.core.indexset import pattern_element_indices
from repro.distributions import matrix_partition, multidim_partition
from repro.distributions.hpf import Block, BlockCyclic, Cyclic, Replicated


def oracle(p, e, length):
    return set(
        pattern_element_indices(
            p.elements[e], p.size, p.displacement, length
        ).tolist()
    )


def realized(inter, length):
    got = set()
    starts, lens = inter.segments_in(0, length - 1)
    for s, ln in zip(starts.tolist(), lens.tolist()):
        got.update(range(s, s + ln))
    return got


def displaced(partition, displacement):
    from repro.core import Partition

    return Partition(
        partition.elements, displacement=displacement, validate=False
    )


CASES = [
    # (partition builder, displacement a, displacement b)
    (lambda: matrix_partition("b", 8, 8, 4), 0, 3),
    (lambda: matrix_partition("c", 8, 8, 4), 5, 0),
    (lambda: matrix_partition("b", 8, 8, 4), 7, 11),
    (
        lambda: multidim_partition((4, 6), 2, (Cyclic(), Block()), (2, 3)),
        2,
        9,
    ),
    (
        lambda: multidim_partition(
            (8, 4), 1, (BlockCyclic(2), Replicated()), (2, 1)
        ),
        1,
        4,
    ),
]


class TestDisplacedNestedIntersections:
    @pytest.mark.parametrize("builder,d1,d2", CASES)
    def test_every_pair_matches_oracle(self, builder, d1, d2):
        base = builder()
        p1 = displaced(base, d1)
        p2 = displaced(builder(), d2)
        length = max(d1, d2) + 2 * math.lcm(p1.size, p2.size)
        for i in range(p1.num_elements):
            for j in range(p2.num_elements):
                inter = intersect_elements(p1, i, p2, j)
                want = oracle(p1, i, length) & oracle(p2, j, length)
                assert realized(inter, length) == want, (i, j)

    @pytest.mark.parametrize("builder,d1,d2", CASES[:3])
    def test_projections_stay_consistent(self, builder, d1, d2):
        p1 = displaced(builder(), d1)
        p2 = displaced(builder(), d2)
        for i in range(p1.num_elements):
            for j in range(p2.num_elements):
                inter = intersect_elements(p1, i, p2, j)
                if inter.is_empty:
                    continue
                pr1 = project(inter, p1, i)
                pr2 = project(inter, p2, j)
                assert (
                    pr1.size_per_period
                    == pr2.size_per_period
                    == inter.size_per_period
                )

    def test_self_intersection_with_shift_is_partial(self):
        """A pattern against itself shifted by one byte shares strictly
        fewer bytes per period than its element size."""
        p0 = matrix_partition("b", 8, 8, 4)
        p1 = displaced(matrix_partition("b", 8, 8, 4), 1)
        inter = intersect_elements(p0, 0, p1, 0)
        assert 0 < inter.size_per_period < p0.element_size(0)

    def test_three_level_trees(self):
        """Nested x nested with three levels each (3-D block grids)."""
        a = multidim_partition((4, 4, 4), 1, (Block(), Block(), Block()),
                               (2, 2, 1))
        b = multidim_partition((4, 4, 4), 1, (Block(), Cyclic(), Block()),
                               (1, 2, 2))
        length = 2 * 64
        for i in range(4):
            for j in range(4):
                inter = intersect_elements(a, i, b, j)
                want = oracle(a, i, length) & oracle(b, j, length)
                assert realized(inter, length) == want
