"""Unit tests for the PITFALLS compact representation."""

import numpy as np
import pytest

from repro.core import Falls
from repro.core.indexset import falls_indices
from repro.core.pitfalls import Pitfalls, cyclic_pitfalls, pitfalls_from_falls


class TestExpansion:
    def test_simple_stripe(self):
        # 4 processors, 2-byte units: PITFALLS (0,1,8,n,2,4).
        pf = Pitfalls(0, 1, 8, 2, 2, 4)
        falls = pf.expand()
        assert falls[0] == Falls(0, 1, 8, 2)
        assert falls[3] == Falls(6, 7, 8, 2)

    def test_single_processor(self):
        pf = Pitfalls(3, 5, 6, 4, 0, 1)
        assert pf.expand() == [Falls(3, 5, 6, 4)]

    def test_nested(self):
        inner = Pitfalls(0, 0, 2, 2, 0, 1)
        pf = Pitfalls(0, 3, 8, 2, 4, 2, (inner,))
        f0 = pf.falls_for(0)
        assert list(falls_indices(f0)) == [0, 2, 8, 10]
        f1 = pf.falls_for(1)
        assert list(falls_indices(f1)) == [4, 6, 12, 14]

    def test_partition(self):
        pf = Pitfalls(0, 1, 8, 2, 2, 4)
        p = pf.partition()
        assert p.num_elements == 4
        assert p.size == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            Pitfalls(0, 1, 8, 2, 2, 0)
        with pytest.raises(ValueError):
            Pitfalls(0, 1, 8, 2, 0, 2)  # p>1 needs d>=1
        with pytest.raises(ValueError):
            Pitfalls(0, 1, 8, 2, 2, 4).falls_for(4)

    def test_size_per_processor(self):
        assert Pitfalls(0, 1, 8, 2, 2, 4).size_per_processor() == 4


class TestInference:
    def test_roundtrip(self):
        pf = Pitfalls(2, 3, 12, 3, 4, 3)
        back = pitfalls_from_falls(pf.expand())
        assert back is not None
        assert (back.l, back.r, back.s, back.n, back.d, back.p) == (2, 3, 12, 3, 4, 3)

    def test_single_falls(self):
        back = pitfalls_from_falls([Falls(0, 3, 8, 2)])
        assert back is not None and back.p == 1

    def test_evenly_displaced_is_a_pitfalls(self):
        # (0,1) and (3,4) share shape with displacement 3 - inferable.
        back = pitfalls_from_falls([Falls(0, 1, 8, 2), Falls(3, 4, 8, 2)])
        assert back is not None and back.d == 3

    def test_irregular_rejected(self):
        # Different block lengths.
        assert pitfalls_from_falls([Falls(0, 1, 8, 2), Falls(2, 4, 8, 2)]) is None
        # Different strides.
        assert pitfalls_from_falls([Falls(0, 1, 8, 2), Falls(2, 3, 6, 2)]) is None
        # Uneven displacements across three processors.
        assert (
            pitfalls_from_falls(
                [Falls(0, 1, 12, 2), Falls(2, 3, 12, 2), Falls(6, 7, 12, 2)]
            )
            is None
        )
        assert pitfalls_from_falls([]) is None

    def test_nested_roundtrip(self):
        inner = Pitfalls(0, 0, 2, 2, 0, 1)
        pf = Pitfalls(0, 3, 16, 2, 4, 2, (inner,))
        back = pitfalls_from_falls(pf.expand())
        assert back is not None
        for proc in range(2):
            np.testing.assert_array_equal(
                falls_indices(back.falls_for(proc)),
                falls_indices(pf.falls_for(proc)),
            )


class TestCyclicConstructor:
    def test_matches_hpf_cyclic(self):
        from repro.distributions.hpf import BlockCyclic, falls_1d

        pf = cyclic_pitfalls(24, 2, 3)
        for proc in range(3):
            want = falls_1d(BlockCyclic(2), 24, 3, proc)
            got = pf.falls_for(proc)
            np.testing.assert_array_equal(
                falls_indices(got),
                np.concatenate([falls_indices(f) for f in want]),
            )

    def test_itemsize_scaling(self):
        pf = cyclic_pitfalls(8, 1, 2, itemsize=4)
        assert pf.block_length == 4
        assert pf.falls_for(1).l == 4

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            cyclic_pitfalls(10, 2, 3)

    def test_partition_tiles(self):
        p = cyclic_pitfalls(16, 2, 4).partition()
        assert p.size == 16
