"""Unit tests for the partitioning-pattern model (paper §5)."""

import pytest

from repro.core import Falls, FallsSet, Partition, PartitionError


class TestValidation:
    def test_valid_striped(self):
        p = Partition([Falls(0, 1, 6, 1), Falls(2, 3, 6, 1), Falls(4, 5, 6, 1)])
        assert p.size == 6
        assert p.num_elements == 3

    def test_gap_rejected(self):
        with pytest.raises(PartitionError, match="gap"):
            Partition([Falls(0, 1, 6, 1), Falls(4, 5, 6, 1)])

    def test_overlap_rejected(self):
        with pytest.raises(PartitionError, match="overlap"):
            Partition([Falls(0, 3, 6, 1), Falls(2, 5, 6, 1)])

    def test_not_starting_at_zero_rejected(self):
        with pytest.raises(PartitionError, match="start at offset 0"):
            Partition([Falls(1, 6, 6, 1)])

    def test_negative_displacement_rejected(self):
        with pytest.raises(PartitionError):
            Partition([Falls(0, 5, 6, 1)], displacement=-1)

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            Partition([])

    def test_interleaved_element_rejected(self):
        interleaved = FallsSet([Falls(0, 1, 16, 2), Falls(4, 5, 16, 2)])
        filler = FallsSet([Falls(2, 3, 16, 2), Falls(6, 15, 16, 2)])
        with pytest.raises(PartitionError, match="interleaved"):
            Partition([interleaved, filler])

    def test_validate_false_skips_checks(self):
        # A deliberately gappy pattern is accepted when validation is off
        # (used internally for partial structures).
        p = Partition([Falls(0, 1, 6, 1), Falls(4, 5, 6, 1)], validate=False)
        assert p.size == 4

    def test_single_element_whole_pattern(self):
        p = Partition([Falls(0, 99, 100, 1)])
        assert p.size == 100
        assert p.element_size(0) == 100

    def test_accepts_bare_falls_and_sequences(self):
        p = Partition([Falls(0, 1, 4, 1), [Falls(2, 3, 4, 1)]])
        assert p.num_elements == 2
        assert all(isinstance(e, FallsSet) for e in p.elements)


class TestOwnership:
    def test_element_owning_with_displacement(self):
        p = Partition(
            [Falls(0, 1, 6, 1), Falls(2, 3, 6, 1), Falls(4, 5, 6, 1)],
            displacement=2,
        )
        assert p.element_owning(2) == (0, 0)
        assert p.element_owning(4) == (1, 0)
        assert p.element_owning(10) == (1, 2)

    def test_before_displacement_rejected(self):
        p = Partition([Falls(0, 5, 6, 1)], displacement=2)
        with pytest.raises(PartitionError):
            p.element_owning(1)


class TestElementLength:
    def test_exact_multiple(self):
        p = Partition([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)])
        assert p.element_length(0, 16) == 8
        assert p.element_length(1, 16) == 8

    def test_partial_period(self):
        p = Partition([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)])
        assert p.element_length(0, 7) == 4  # bytes 0,1,4,5
        assert p.element_length(1, 7) == 3  # bytes 2,3,6

    def test_with_displacement(self):
        p = Partition([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)], displacement=10)
        assert p.element_length(0, 10) == 0
        assert p.element_length(0, 12) == 2
