"""Tests for the ASCII renderers."""

from repro import Falls, FallsSet, Partition, PeriodicFallsSet
from repro.viz import (
    ownership_string,
    render_falls,
    render_partition,
    render_periodic,
)


class TestRenderFalls:
    def test_figure1(self):
        out = render_falls(Falls(3, 5, 6, 3))
        marks = out.splitlines()[-1]
        assert marks == "...###...###...###"

    def test_width_padding(self):
        out = render_falls(Falls(0, 1, 4, 2), width=10)
        assert out.splitlines()[-1] == "##..##...."

    def test_set(self):
        out = render_falls([Falls(0, 0, 4, 2), Falls(2, 2, 4, 2)])
        assert out.splitlines()[-1] == "#.#.#.#"

    def test_nested(self):
        out = render_falls(Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),)))
        assert out.splitlines()[-1] == "#.#.....#.#"

    def test_empty(self):
        assert render_falls([]) == "(empty)"


class TestOwnership:
    def test_striped(self):
        p = Partition(
            [Falls(0, 1, 6, 1), Falls(2, 3, 6, 1), Falls(4, 5, 6, 1)],
            displacement=2,
        )
        assert ownership_string(p, 14) == "..001122001122"

    def test_ruler_alignment(self):
        out = render_partition(
            Partition([Falls(0, 3, 8, 1), Falls(4, 7, 8, 1)]), 16
        )
        lines = out.splitlines()
        assert lines[1].startswith("0")  # tens ruler
        assert lines[2] == "0123456789012345"
        assert lines[3] == "0000111100001111"

    def test_element_lanes(self):
        out = render_partition(
            Partition([Falls(0, 3, 8, 1), Falls(4, 7, 8, 1)]), 8
        )
        lanes = [l for l in out.splitlines() if "element " in l and "B/period" in l]
        assert lanes[0].startswith("0000....")
        assert lanes[1].startswith("....1111")


class TestRenderPeriodic:
    def test_marks(self):
        pfs = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 2, 4)
        out = render_periodic(pfs, 10)
        assert out.splitlines()[-1] == "..##..##.."

    def test_header_reports_fragments(self):
        pfs = PeriodicFallsSet(FallsSet([Falls(0, 0, 2, 4)]), 0, 8)
        out = render_periodic(pfs)
        assert "4 fragment(s)" in out.splitlines()[0]


class TestRenderPlan:
    def test_identity_diagonal(self):
        from repro import matrix_partition, build_plan
        from repro.viz import render_plan

        plan = build_plan(
            matrix_partition("r", 8, 8, 4), matrix_partition("r", 8, 8, 4)
        )
        out = render_plan(plan)
        assert "[identity]" in out
        lines = out.splitlines()
        # Row 0 moves 16 bytes to destination 0 and nothing elsewhere.
        assert "16" in lines[3]
        assert lines[-1].endswith("64")

    def test_all_to_all_matrix(self):
        from repro import matrix_partition, build_plan
        from repro.viz import render_plan

        plan = build_plan(
            matrix_partition("c", 8, 8, 4), matrix_partition("r", 8, 8, 4)
        )
        out = render_plan(plan)
        assert "[identity]" not in out
        assert out.count(" 4") >= 16  # 16 cells of 4 bytes each
