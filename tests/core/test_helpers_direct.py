"""Direct tests for helpers that are otherwise exercised only indirectly."""

import numpy as np
import pytest

from repro.core.falls import Falls, FallsSet
from repro.core.indexset import falls_set_indices, indices_to_offsets_map
from repro.core.mapping import map_aux
from repro.core.segments import segments_from_pairs, segments_to_linesegments
from repro.distributions.multidim import compose_dims, scale_falls


class TestMapAux:
    """The paper's MAP-AUX_S in isolation (pattern-relative)."""

    SET = FallsSet([Falls(0, 1, 6, 1), Falls(4, 5, 6, 1)])

    def test_exact_ranks(self):
        # Selected pattern offsets: 0,1,4,5 -> ranks 0..3.
        assert map_aux(self.SET, 0) == 0
        assert map_aux(self.SET, 1) == 1
        assert map_aux(self.SET, 4) == 2
        assert map_aux(self.SET, 5) == 3

    def test_exact_miss_returns_none(self):
        assert map_aux(self.SET, 2) is None
        assert map_aux(self.SET, 3) is None

    def test_next_sentinel_past_end(self):
        # Past the footprint: 'next' returns total size (4), the
        # "first byte of the following tile" sentinel.
        assert map_aux(self.SET, 5) == 3
        assert map_aux(FallsSet([Falls(0, 1, 6, 1)]), 3, mode="next") == 2

    def test_prev_sentinel_before_start(self):
        assert map_aux(FallsSet([Falls(2, 3, 6, 1)]), 1, mode="prev") == -1

    def test_gap_modes(self):
        assert map_aux(self.SET, 2, mode="next") == 2
        assert map_aux(self.SET, 3, mode="prev") == 1


class TestScaleFalls:
    def test_leaf_scaling(self):
        f = Falls(1, 2, 4, 3)  # elements 1-2 every 4, three times
        scaled = scale_falls(f, 8, ())
        assert scaled == Falls(8, 23, 32, 3)

    def test_partial_inner_attached(self):
        inner = (Falls(0, 1, 8, 1),)  # first 2 bytes of each 8-byte element
        scaled = scale_falls(Falls(0, 0, 2, 2), 8, inner)
        got = set(falls_set_indices([scaled]).tolist())
        assert got == {0, 1, 16, 17}

    def test_full_inner_collapses_to_leaf(self):
        inner = (Falls(0, 7, 8, 1),)
        scaled = scale_falls(Falls(0, 1, 4, 2), 8, inner)
        assert scaled.is_leaf

    def test_multielement_block_wraps_inner(self):
        inner = (Falls(0, 0, 4, 1),)  # first byte of each 4-byte element
        scaled = scale_falls(Falls(0, 2, 4, 1), 4, inner)  # 3 elements
        got = set(falls_set_indices([scaled]).tolist())
        assert got == {0, 4, 8}


class TestComposeDims:
    def test_2d_manual(self):
        # dim0: row 1 of 3; dim1: cols {0, 2} of 4; itemsize 2.
        per_dim = [[Falls(1, 1, 3, 1)], [Falls(0, 0, 2, 2)]]
        out = compose_dims(per_dim, (3, 4), 2)
        got = falls_set_indices(out)
        arr = np.arange(24).reshape(3, 4, 2)
        want = np.sort(arr[1, [0, 2]].reshape(-1))
        np.testing.assert_array_equal(got, want)

    def test_empty_dim_gives_empty(self):
        assert compose_dims([[], [Falls(0, 1, 2, 1)]], (2, 2), 1) == []

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            compose_dims([[Falls(0, 0, 1, 1)]], (2, 2), 1)


class TestSmallConversions:
    def test_segments_to_linesegments(self):
        segs = segments_from_pairs([(0, 3), (8, 8)])
        ls = segments_to_linesegments(segs)
        assert [(s.start, s.stop) for s in ls] == [(0, 3), (8, 8)]

    def test_indices_to_offsets_map(self):
        m = indices_to_offsets_map(np.array([3, 7, 9]))
        assert m == {3: 0, 7: 1, 9: 2}


class TestParallelCallsDirect:
    def test_parallel_write_and_read_functions(self):
        """Exercise parallel_write/parallel_read without the facade."""
        from repro.clusterfile import ClusterFile, WriteRequest
        from repro.clusterfile.client import parallel_read, parallel_write
        from repro.clusterfile.view import set_view
        from repro.distributions import round_robin
        from repro.simulation import Cluster, ClusterConfig

        cluster = Cluster(ClusterConfig(compute_nodes=2, io_nodes=2))
        phys = round_robin(2, 4)
        cfile = ClusterFile("f", phys)
        views = [set_view(c, phys, c, phys) for c in range(2)]
        data = [np.arange(8, dtype=np.uint8) + 10 * c for c in range(2)]
        result = parallel_write(
            cluster,
            cfile,
            [WriteRequest(views[c], 0, 7, data[c]) for c in range(2)],
            to_disk=True,
        )
        assert result.payload_bytes == 16
        assert set(result.per_compute) == {0, 1}
        out = [np.zeros(8, dtype=np.uint8) for _ in range(2)]
        parallel_read(
            cluster,
            cfile,
            [WriteRequest(views[c], 0, 7, out[c]) for c in range(2)],
            from_disk=True,
        )
        for c in range(2):
            np.testing.assert_array_equal(out[c], data[c])
