"""Unit tests for the matching-degree metrics (paper §9 future work)."""

import pytest

from repro import Falls, Partition, matrix_partition, round_robin
from repro.core.matching import matching_degree


class TestIdentity:
    @pytest.mark.parametrize("layout", ["r", "c", "b"])
    def test_identical_layouts_score_one(self, layout):
        p = matrix_partition(layout, 64, 64, 4)
        q = matrix_partition(layout, 64, 64, 4)
        m = matching_degree(p, q)
        assert m.identity
        assert m.degree() == pytest.approx(1.0)
        assert m.contiguity == pytest.approx(1.0)
        assert m.transfers == m.min_transfers == 4
        assert m.fan_out == m.fan_in == 1

    def test_same_bytes_different_descriptions(self):
        # A round-robin stripe described two ways: unit 4 twice vs unit 4
        # once with doubled period - same byte sets, still identity.
        p = round_robin(2, 4)
        q = Partition(
            [Falls(0, 3, 8, 2), Falls(4, 7, 8, 2)], validate=True
        )
        m = matching_degree(p, q)
        assert m.identity
        assert m.degree() == pytest.approx(1.0)


class TestMismatch:
    def test_all_to_all_detected(self):
        m = matching_degree(
            matrix_partition("c", 64, 64, 4), matrix_partition("r", 64, 64, 4)
        )
        assert m.transfers == 16
        assert m.fan_out == 4 and m.fan_in == 4
        assert not m.identity
        assert m.degree() < 0.2

    def test_paper_cost_ordering(self):
        """b-r must score better than c-r (the paper's measured cost
        ordering), both worse than r-r."""
        n = 256
        rr = matching_degree(
            matrix_partition("r", n, n, 4), matrix_partition("r", n, n, 4)
        )
        br = matching_degree(
            matrix_partition("b", n, n, 4), matrix_partition("r", n, n, 4)
        )
        cr = matching_degree(
            matrix_partition("c", n, n, 4), matrix_partition("r", n, n, 4)
        )
        assert rr.degree() > br.degree() > cr.degree()

    def test_symmetry_of_degree(self):
        n = 64
        ab = matching_degree(
            matrix_partition("b", n, n, 4), matrix_partition("r", n, n, 4)
        )
        ba = matching_degree(
            matrix_partition("r", n, n, 4), matrix_partition("b", n, n, 4)
        )
        assert ab.degree() == pytest.approx(ba.degree())

    def test_bytes_accounting(self):
        m = matching_degree(
            matrix_partition("c", 64, 64, 4), matrix_partition("r", 64, 64, 4)
        )
        assert m.bytes_per_period == 64 * 64
        assert m.mean_message_bytes == pytest.approx(64 * 64 / 16)
        assert m.period == 64 * 64

    def test_unequal_pattern_sizes(self):
        m = matching_degree(round_robin(2, 3), round_robin(2, 4))
        assert m.period == 24
        assert m.bytes_per_period == 24
        assert 0 < m.degree() < 1

    def test_fragmentation_drives_degree_down(self):
        # Finer stripes against block layout fragment more.
        coarse = matching_degree(round_robin(4, 16), round_robin(4, 64))
        fine = matching_degree(round_robin(4, 1), round_robin(4, 64))
        assert fine.degree() < coarse.degree()
        assert fine.mean_fragment_bytes < coarse.mean_fragment_bytes
