"""Unit tests for vectorised segment enumeration and interval algebra."""

import numpy as np
import pytest

from repro.core.falls import Falls
from repro.core.segments import (
    clip_segments,
    intersect_segment_arrays,
    leaf_segment_arrays,
    leaf_segment_arrays_set,
    merge_segment_arrays,
    segments_from_pairs,
    tile_segment_arrays,
    total_bytes,
)


def seg(pairs):
    return segments_from_pairs(pairs)


class TestLeafSegmentArrays:
    def test_flat(self):
        starts, lengths = leaf_segment_arrays(Falls(3, 5, 6, 3))
        assert starts.tolist() == [3, 9, 15]
        assert lengths.tolist() == [3, 3, 3]

    def test_nested(self):
        starts, lengths = leaf_segment_arrays(Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),)))
        assert starts.tolist() == [0, 2, 8, 10]
        assert lengths.tolist() == [1, 1, 1, 1]

    def test_matches_python_iterator(self):
        f = Falls(1, 6, 10, 4, (Falls(0, 1, 3, 2),))
        starts, lengths = leaf_segment_arrays(f)
        py = [(s.start, s.length) for s in f.leaf_segments()]
        assert list(zip(starts.tolist(), lengths.tolist())) == py

    def test_set_concatenation(self):
        starts, lengths = leaf_segment_arrays_set(
            [Falls(0, 1, 6, 2), Falls(14, 15, 2, 1)]
        )
        assert starts.tolist() == [0, 6, 14]

    def test_interleaved_set_is_sorted(self):
        starts, _ = leaf_segment_arrays_set(
            [Falls(0, 1, 16, 2), Falls(4, 5, 16, 2)]
        )
        assert starts.tolist() == [0, 4, 16, 20]

    def test_empty_set(self):
        starts, lengths = leaf_segment_arrays_set([])
        assert starts.size == 0 and lengths.size == 0


class TestClip:
    def test_interior(self):
        starts, lengths = clip_segments(
            np.array([0, 10, 20]), np.array([5, 5, 5]), 2, 22
        )
        assert starts.tolist() == [2, 10, 20]
        assert lengths.tolist() == [3, 5, 3]

    def test_drop_outside(self):
        starts, lengths = clip_segments(np.array([0, 100]), np.array([5, 5]), 10, 50)
        assert starts.size == 0

    def test_empty_window(self):
        starts, _ = clip_segments(np.array([0]), np.array([5]), 10, 5)
        assert starts.size == 0


class TestMerge:
    def test_adjacent_coalesce(self):
        starts, lengths = merge_segment_arrays(seg([(0, 4), (5, 9), (12, 13)]))
        assert starts.tolist() == [0, 12]
        assert lengths.tolist() == [10, 2]

    def test_disjoint_untouched(self):
        starts, lengths = merge_segment_arrays(seg([(0, 4), (6, 9)]))
        assert starts.tolist() == [0, 6]

    def test_empty(self):
        starts, _ = merge_segment_arrays(
            (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        )
        assert starts.size == 0


class TestIntersect:
    def test_basic(self):
        a = seg([(0, 9), (20, 29)])
        b = seg([(5, 24)])
        starts, lengths = intersect_segment_arrays(a, b)
        assert starts.tolist() == [5, 20]
        assert lengths.tolist() == [5, 5]

    def test_no_overlap(self):
        starts, _ = intersect_segment_arrays(seg([(0, 4)]), seg([(5, 9)]))
        assert starts.size == 0

    def test_many_to_one(self):
        a = seg([(0, 1), (4, 5), (8, 9)])
        b = seg([(0, 9)])
        starts, _ = intersect_segment_arrays(a, b)
        assert starts.tolist() == [0, 4, 8]

    def test_oracle_random(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            # Build two random disjoint segment lists over [0, 200).
            def random_segs():
                pts = np.sort(rng.choice(200, size=rng.integers(2, 20), replace=False))
                pairs = [
                    (int(pts[i]), int(pts[i + 1]) - 1)
                    for i in range(0, len(pts) - 1, 2)
                    if pts[i + 1] - 1 >= pts[i]
                ]
                return segments_from_pairs(pairs)

            a, b = random_segs(), random_segs()
            got_starts, got_lengths = intersect_segment_arrays(a, b)
            got = set()
            for s, ln in zip(got_starts.tolist(), got_lengths.tolist()):
                got.update(range(s, s + ln))
            set_a = set()
            for s, ln in zip(a[0].tolist(), a[1].tolist()):
                set_a.update(range(s, s + ln))
            set_b = set()
            for s, ln in zip(b[0].tolist(), b[1].tolist()):
                set_b.update(range(s, s + ln))
            assert got == (set_a & set_b)


class TestTile:
    def test_tile(self):
        starts, lengths = tile_segment_arrays(seg([(0, 1), (4, 5)]), 8, 3, 100)
        assert starts.tolist() == [100, 104, 108, 112, 116, 120]
        assert lengths.tolist() == [2, 2, 2, 2, 2, 2]

    def test_zero_copies(self):
        starts, _ = tile_segment_arrays(seg([(0, 1)]), 8, 0)
        assert starts.size == 0

    def test_negative_copies_rejected(self):
        with pytest.raises(ValueError):
            tile_segment_arrays(seg([(0, 1)]), 8, -1)


class TestHelpers:
    def test_total_bytes(self):
        assert total_bytes(seg([(0, 4), (10, 11)])) == 7
        assert total_bytes(seg([])) == 0

    def test_segments_from_pairs_validation(self):
        with pytest.raises(ValueError):
            segments_from_pairs([(5, 3)])
        with pytest.raises(ValueError):
            segments_from_pairs([(0, 5), (3, 8)])


class TestMergeContainedSegments:
    """Regression: Hypothesis found that a segment fully contained in its
    predecessor broke run detection (union produced overlapping FALLS)."""

    def test_contained_segment(self):
        starts, lengths = merge_segment_arrays(
            (np.array([5, 5, 7, 9]), np.array([4, 1, 1, 1]))
        )
        assert starts.tolist() == [5]
        assert lengths.tolist() == [5]

    def test_chain_of_containment(self):
        starts, lengths = merge_segment_arrays(
            (np.array([0, 1, 2, 10]), np.array([9, 2, 1, 1]))
        )
        assert starts.tolist() == [0, 10]
        assert lengths.tolist() == [9, 1]

    def test_union_of_overlapping_families_regression(self):
        from repro.core.algebra import same_bytes, union
        from repro.core.falls import Falls, FallsSet

        a = FallsSet((Falls(0, 1, 2, 1), Falls(5, 5, 1, 1), Falls(7, 7, 1, 1)))
        b = FallsSet((Falls(0, 1, 2, 1), Falls(5, 8, 4, 1), Falls(9, 9, 1, 1)))
        assert same_bytes(union(a, b), union(b, a))
        # The merged result is maximal runs, either way around.
        assert str(union(b, a)) == "{(0,1,2,1),(5,9,5,1)}"
