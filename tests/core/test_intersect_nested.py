"""Unit tests for nested intersection (PREPROCESS + INTERSECT-AUX) and
nested cutting, checked against the byte-index oracle."""

import numpy as np
import pytest

from repro.core import (
    Falls,
    FallsSet,
    Partition,
    cut_nested_set,
    intersect_elements,
    intersect_nested_sets,
    intersect_partitions,
)
from repro.core.indexset import falls_set_indices, pattern_element_indices


def byte_set(falls_list):
    return set(falls_set_indices(falls_list).tolist())


class TestIntersectNestedSets:
    def test_leaf_level(self):
        a = [Falls(0, 7, 16, 2)]
        b = [Falls(0, 3, 8, 4)]
        got = byte_set(intersect_nested_sets(a, b))
        assert got == byte_set(a) & byte_set(b)

    def test_figure4_nested(self):
        v = [Falls(0, 7, 16, 2, (Falls(0, 1, 4, 2),))]
        s = [Falls(0, 3, 8, 4, (Falls(0, 0, 2, 2),))]
        got = byte_set(intersect_nested_sets(v, s))
        assert got == {0, 16}

    def test_different_heights_padded(self):
        deep = [Falls(0, 7, 16, 2, (Falls(0, 1, 4, 2),))]
        shallow = [Falls(0, 5, 8, 4)]
        got = byte_set(intersect_nested_sets(deep, shallow))
        assert got == byte_set(deep) & byte_set(shallow)

    def test_three_levels(self):
        a = [Falls(0, 31, 64, 2, (Falls(0, 15, 16, 2, (Falls(0, 3, 8, 2),)),))]
        b = [Falls(0, 47, 96, 1, (Falls(0, 5, 12, 4),))]
        got = byte_set(intersect_nested_sets(a, b))
        assert got == byte_set(a) & byte_set(b)

    def test_multi_falls_sets(self):
        a = [Falls(0, 1, 8, 4), Falls(36, 39, 4, 1)]
        b = [Falls(0, 2, 5, 8)]
        got = byte_set(intersect_nested_sets(a, b))
        assert got == byte_set(a) & byte_set(b)

    def test_empty_result(self):
        assert intersect_nested_sets([Falls(0, 1, 8, 2)], [Falls(4, 5, 8, 2)]) == []

    def test_empty_input(self):
        assert intersect_nested_sets([], [Falls(0, 1, 4, 2)]) == []

    def test_randomised_oracle(self):
        rng = np.random.default_rng(23)

        def rand_nested(depth):
            l = int(rng.integers(0, 6))
            blen = int(rng.integers(2, 12))
            s = blen + int(rng.integers(0, 8))
            n = int(rng.integers(1, 5))
            if depth <= 1 or blen < 4:
                return Falls(l, l + blen - 1, s, n)
            inner_blen = int(rng.integers(1, blen // 2))
            inner_s = inner_blen + int(rng.integers(0, 3))
            max_n = max(1, (blen - inner_blen) // inner_s + 1)
            inner_n = int(rng.integers(1, max_n + 1))
            return Falls(
                l,
                l + blen - 1,
                s,
                n,
                (Falls(0, inner_blen - 1, inner_s, inner_n),),
            )

        for trial in range(150):
            a = [rand_nested(int(rng.integers(1, 3)))]
            b = [rand_nested(int(rng.integers(1, 3)))]
            got = byte_set(intersect_nested_sets(a, b))
            want = byte_set(a) & byte_set(b)
            assert got == want, (trial, a[0], b[0])


class TestCutNestedSet:
    def test_leaf(self):
        got = cut_nested_set([Falls(3, 5, 6, 5)], 4, 28)
        assert byte_set(got) == {b - 4 for b in byte_set([Falls(3, 5, 6, 5)]) if 4 <= b <= 28}

    def test_nested_partial_block(self):
        f = Falls(0, 7, 16, 2, (Falls(0, 1, 4, 2),))  # bytes 0,1,4,5,16,17,20,21
        got = cut_nested_set([f], 1, 17)
        assert byte_set(got) == {0, 3, 4, 15, 16}  # rebased: 1,4,5,16,17 minus 1

    def test_empty_window(self):
        assert cut_nested_set([Falls(0, 3, 8, 2)], 6, 7) == []


class TestIntersectElements:
    def oracle(self, p1, e1, p2, e2, file_length):
        a = pattern_element_indices(
            p1.elements[e1], p1.size, p1.displacement, file_length
        )
        b = pattern_element_indices(
            p2.elements[e2], p2.size, p2.displacement, file_length
        )
        return set(a.tolist()) & set(b.tolist())

    def test_same_size_patterns(self):
        rows = Partition([Falls(8 * i, 8 * i + 7, 32, 1) for i in range(4)])
        cols = Partition([Falls(2 * i, 2 * i + 1, 8, 4) for i in range(4)])
        for i in range(4):
            for j in range(4):
                inter = intersect_elements(rows, i, cols, j)
                got = set()
                starts, lengths = inter.segments_in(0, 63)
                for s, ln in zip(starts.tolist(), lengths.tolist()):
                    got.update(range(s, s + ln))
                assert got == self.oracle(rows, i, cols, j, 64)

    def test_different_pattern_sizes_lcm(self):
        p1 = Partition([Falls(0, 2, 6, 1), Falls(3, 5, 6, 1)])  # size 6
        p2 = Partition([Falls(0, 3, 8, 1), Falls(4, 7, 8, 1)])  # size 8
        inter = intersect_elements(p1, 0, p2, 1)
        assert inter.period == 24
        got = set()
        starts, lengths = inter.segments_in(0, 47)
        for s, ln in zip(starts.tolist(), lengths.tolist()):
            got.update(range(s, s + ln))
        assert got == self.oracle(p1, 0, p2, 1, 48)

    def test_different_displacements(self):
        p1 = Partition([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)], displacement=0)
        p2 = Partition([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)], displacement=3)
        inter = intersect_elements(p1, 0, p2, 0)
        assert inter.displacement == 3
        got = set()
        starts, lengths = inter.segments_in(0, 100)
        for s, ln in zip(starts.tolist(), lengths.tolist()):
            got.update(range(s, s + ln))
        # Oracle over the common (periodic) region only.
        want = self.oracle(p1, 0, p2, 0, 101)
        assert got == want

    def test_identical_partitions_intersect_fully(self):
        p = Partition([Falls(0, 3, 8, 1), Falls(4, 7, 8, 1)])
        inter = intersect_elements(p, 0, p, 0)
        assert inter.size_per_period == 4
        assert inter.is_empty is False
        cross = intersect_elements(p, 0, p, 1)
        assert cross.is_empty

    def test_intersect_partitions_matrix(self):
        rows = Partition([Falls(8 * i, 8 * i + 7, 32, 1) for i in range(4)])
        cols = Partition([Falls(2 * i, 2 * i + 1, 8, 4) for i in range(4)])
        matrix = intersect_partitions(rows, cols)
        # Every row element shares bytes with every column element.
        assert set(matrix.keys()) == {(i, j) for i in range(4) for j in range(4)}
        total = sum(v.size_per_period for v in matrix.values())
        assert total == 32  # every byte of the 32-byte period exactly once

    def test_randomised_partition_oracle(self):
        rng = np.random.default_rng(5)
        for _ in range(40):
            # Random contiguous-coverage partitions via random split points.
            def rand_partition(size, parts):
                pts = sorted(
                    rng.choice(np.arange(1, size), size=parts - 1, replace=False).tolist()
                )
                bounds = [0] + pts + [size]
                els = [
                    Falls(bounds[i], bounds[i + 1] - 1, size, 1)
                    for i in range(parts)
                ]
                return Partition(els)

            p1 = rand_partition(12, 3)
            p2 = rand_partition(18, 2)
            for i in range(3):
                for j in range(2):
                    inter = intersect_elements(p1, i, p2, j)
                    got = set()
                    starts, lengths = inter.segments_in(0, 71)
                    for s, ln in zip(starts.tolist(), lengths.tolist()):
                        got.update(range(s, s + ln))
                    assert got == self.oracle(p1, i, p2, j, 72)
