"""Unit tests for run compression and tree shaping."""

import numpy as np
import pytest

from repro.core.falls import Falls, FallsSet
from repro.core.indexset import falls_indices, falls_set_indices
from repro.core.normalize import (
    coalesced_falls_set,
    compress_segments,
    equalize_set_heights,
    falls_set_from_segments,
    pad_to_height,
    trivial_inner,
)
from repro.core.segments import segments_from_pairs


class TestCompressSegments:
    def test_regular_run_single_falls(self):
        segs = segments_from_pairs([(0, 1), (4, 5), (8, 9), (12, 13)])
        out = compress_segments(segs)
        assert out == [Falls(0, 1, 4, 4)]

    def test_stride_change_splits(self):
        segs = segments_from_pairs([(0, 1), (4, 5), (10, 11), (16, 17)])
        out = compress_segments(segs)
        # Greedy: run (0,4) then run at stride 6.
        assert out[0] == Falls(0, 1, 4, 2)
        assert out[1] == Falls(10, 11, 6, 2)

    def test_length_change_splits(self):
        segs = segments_from_pairs([(0, 1), (4, 6), (8, 9)])
        out = compress_segments(segs)
        assert [f.block_length for f in out] == [2, 3, 2]

    def test_single_segment(self):
        out = compress_segments(segments_from_pairs([(5, 9)]))
        assert out == [Falls(5, 9, 5, 1)]

    def test_empty(self):
        assert compress_segments(segments_from_pairs([])) == []

    def test_bytes_preserved_randomised(self):
        rng = np.random.default_rng(3)
        for _ in range(100):
            points = np.sort(
                rng.choice(300, size=2 * int(rng.integers(1, 15)), replace=False)
            )
            pairs = [
                (int(points[2 * i]), int(points[2 * i + 1]))
                for i in range(points.size // 2)
            ]
            # Make strictly disjoint (drop touching pairs).
            pairs = [
                p
                for i, p in enumerate(pairs)
                if i == 0 or p[0] > pairs[i - 1][1] + 0
            ]
            segs = segments_from_pairs(pairs)
            out = compress_segments(segs)
            want = set()
            for a, b in pairs:
                want.update(range(a, b + 1))
            got = set(falls_set_indices(out).tolist())
            assert got == want


class TestFallsSetBuilders:
    def test_falls_set_from_segments(self):
        s = falls_set_from_segments(segments_from_pairs([(0, 0), (2, 2), (4, 4)]))
        assert isinstance(s, FallsSet)
        assert s.size() == 3

    def test_coalesced(self):
        s = coalesced_falls_set(segments_from_pairs([(0, 3), (4, 7)]))
        assert len(s) == 1
        assert s[0].is_contiguous


class TestTrivialInner:
    def test_height_one(self):
        t = trivial_inner(8, 1)
        assert t == Falls(0, 7, 8, 1)

    def test_height_three(self):
        t = trivial_inner(8, 3)
        assert t.height() == 3
        assert t.size() == 8
        np.testing.assert_array_equal(falls_indices(t), np.arange(8))

    def test_invalid_height(self):
        with pytest.raises(ValueError):
            trivial_inner(8, 0)


class TestPadToHeight:
    def test_noop_when_tall_enough(self):
        f = Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),))
        assert pad_to_height(f, 2) == f

    def test_leaf_padding(self):
        f = Falls(3, 5, 6, 4)
        padded = pad_to_height(f, 3)
        assert padded.height() == 3
        assert padded.has_uniform_depth()
        np.testing.assert_array_equal(falls_indices(padded), falls_indices(f))

    def test_mixed_depth_tree_uniformised(self):
        f = Falls(
            0,
            15,
            32,
            2,
            (Falls(0, 3, 8, 1, (Falls(0, 0, 2, 2),)), Falls(8, 11, 8, 1)),
        )
        assert not f.has_uniform_depth()
        padded = pad_to_height(f, 3)
        assert padded.has_uniform_depth()
        np.testing.assert_array_equal(falls_indices(padded), falls_indices(f))

    def test_cannot_shrink(self):
        f = Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),))
        with pytest.raises(ValueError):
            pad_to_height(f, 1)


class TestEqualizeSetHeights:
    def test_mixed(self):
        a = (Falls(0, 3, 8, 2, (Falls(0, 0, 2, 2),)),)
        b = (Falls(0, 5, 8, 2),)
        pa, pb, h = equalize_set_heights(a, b)
        assert h == 2
        assert all(f.height() == 2 for f in pa + pb)
        np.testing.assert_array_equal(
            falls_set_indices(pb), falls_set_indices(b)
        )

    def test_empty_sets(self):
        pa, pb, h = equalize_set_heights((), ())
        assert pa == () and pb == () and h == 0
