"""Unit tests for CUT-FALLS and INTERSECT-FALLS against the byte oracle."""

import numpy as np
import pytest

from repro.core.cut import cut_falls, cut_falls_pieces
from repro.core.falls import Falls
from repro.core.indexset import falls_indices
from repro.core.intersect_flat import intersect_falls


def byte_set(falls_list, shift=0):
    out = set()
    for f in falls_list:
        out.update((falls_indices(f) + shift).tolist())
    return out


class TestCutFalls:
    def test_window_before_falls(self):
        assert cut_falls(Falls(10, 12, 5, 2), 0, 9) == []

    def test_window_after_falls(self):
        assert cut_falls(Falls(0, 2, 5, 2), 10, 20) == []

    def test_window_in_gap(self):
        # Blocks [0,2], [10,12]; window [4,8] lies entirely in the gap.
        assert cut_falls(Falls(0, 2, 10, 2), 4, 8) == []

    def test_exact_window_identity(self):
        f = Falls(3, 5, 6, 4)
        pieces = cut_falls(f, 3, f.extent_stop)
        assert pieces == [Falls(0, 2, 6, 4)]

    def test_single_block_partial_both_sides(self):
        pieces = cut_falls(Falls(0, 9, 10, 1), 3, 6)
        assert pieces == [Falls(0, 3, 4, 1)]

    def test_offsets_tracked(self):
        pieces = cut_falls_pieces(Falls(3, 5, 6, 5), 4, 28)
        assert [(p.offset, p.first_block) for p in pieces] == [
            (1, 0),
            (0, 1),
            (0, 4),
        ]

    @pytest.mark.parametrize(
        "falls,a,b",
        [
            (Falls(3, 5, 6, 5), 4, 28),
            (Falls(0, 0, 2, 16), 1, 30),
            (Falls(2, 9, 11, 4), 0, 100),
            (Falls(2, 9, 11, 4), 5, 17),
            (Falls(0, 4, 5, 6), 7, 22),  # contiguous FALLS
            (Falls(5, 5, 1, 1), 5, 5),
        ],
    )
    def test_bytes_preserved(self, falls, a, b):
        idx = falls_indices(falls)
        want = set(idx[(idx >= a) & (idx <= b)].tolist())
        got = byte_set(cut_falls(falls, a, b), shift=a)
        assert got == want

    def test_pieces_relative_to_a(self):
        pieces = cut_falls(Falls(10, 14, 10, 3), 12, 40)
        assert pieces[0].l == 0  # 12 - 12


class TestIntersectFalls:
    def test_paper_example(self):
        assert intersect_falls(Falls(0, 7, 16, 2), Falls(0, 3, 8, 4)) == [
            Falls(0, 3, 16, 2)
        ]

    def test_disjoint(self):
        assert intersect_falls(Falls(0, 1, 8, 4), Falls(4, 5, 8, 4)) == []

    def test_identical(self):
        f = Falls(2, 5, 8, 4)
        got = byte_set(intersect_falls(f, f))
        assert got == set(falls_indices(f).tolist())

    def test_single_block_vs_family(self):
        got = intersect_falls(Falls(0, 20, 21, 1), Falls(2, 4, 8, 3))
        assert byte_set(got) == {2, 3, 4, 10, 11, 12, 18, 19, 20}

    def test_family_vs_single_block(self):
        got = intersect_falls(Falls(2, 4, 8, 3), Falls(0, 10, 11, 1))
        assert byte_set(got) == {2, 3, 4, 10}

    @pytest.mark.parametrize(
        "f1,f2",
        [
            (Falls(0, 7, 16, 2), Falls(0, 3, 8, 4)),
            (Falls(0, 2, 6, 8), Falls(0, 3, 9, 6)),  # coprime-ish strides
            (Falls(1, 5, 7, 10), Falls(3, 4, 5, 12)),
            (Falls(0, 0, 2, 32), Falls(0, 0, 3, 22)),
            (Falls(5, 9, 20, 3), Falls(0, 63, 64, 1)),
            (Falls(0, 15, 16, 4), Falls(8, 23, 32, 2)),
            (Falls(2, 3, 4, 100), Falls(1, 2, 6, 70)),
        ],
    )
    def test_oracle(self, f1, f2):
        want = set(falls_indices(f1).tolist()) & set(falls_indices(f2).tolist())
        got = byte_set(intersect_falls(f1, f2))
        assert got == want

    def test_randomised_oracle(self):
        rng = np.random.default_rng(13)
        for _ in range(200):
            def rand_falls():
                l = int(rng.integers(0, 10))
                blen = int(rng.integers(1, 8))
                s = blen + int(rng.integers(0, 10))
                n = int(rng.integers(1, 12))
                return Falls(l, l + blen - 1, s, n)

            f1, f2 = rand_falls(), rand_falls()
            want = set(falls_indices(f1).tolist()) & set(falls_indices(f2).tolist())
            got = byte_set(intersect_falls(f1, f2))
            assert got == want, (f1, f2)

    def test_results_sorted_and_disjoint(self):
        out = intersect_falls(Falls(0, 5, 7, 9), Falls(1, 3, 5, 13))
        all_bytes = []
        for f in out:
            all_bytes.extend(falls_indices(f).tolist())
        assert len(all_bytes) == len(set(all_bytes))
        lefts = [f.l for f in out]
        assert lefts == sorted(lefts)
