"""Unit + randomized tests for the FALLS set algebra."""

import numpy as np
import pytest

from repro.core import Falls, FallsSet
from repro.core.algebra import (
    complement,
    difference,
    partition_from_elements,
    same_bytes,
    union,
)
from repro.core.indexset import falls_set_indices


def bytes_of(fam):
    falls = fam.falls if isinstance(fam, FallsSet) else list(fam)
    return set(falls_set_indices(falls).tolist())


class TestComplement:
    def test_basic(self):
        got = complement([Falls(0, 1, 4, 2)], 8)
        assert bytes_of(got) == {2, 3, 6, 7}

    def test_full_selection_empty_complement(self):
        got = complement([Falls(0, 7, 8, 1)], 8)
        assert got.is_empty

    def test_empty_selection(self):
        got = complement([], 5)
        assert bytes_of(got) == {0, 1, 2, 3, 4}

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            complement([Falls(0, 9, 10, 1)], 8)
        with pytest.raises(ValueError):
            complement([], 0)

    def test_compresses_regular_structure(self):
        got = complement([Falls(0, 0, 2, 8)], 16)  # evens -> odds
        assert len(got) == 1
        assert got[0] == Falls(1, 1, 2, 8)


class TestUnionDifference:
    def test_union_disjoint(self):
        got = union([Falls(0, 0, 4, 2)], [Falls(2, 2, 4, 2)])
        assert bytes_of(got) == {0, 2, 4, 6}

    def test_union_overlapping(self):
        got = union([Falls(0, 5, 6, 1)], [Falls(3, 8, 6, 1)])
        assert bytes_of(got) == set(range(9))
        assert len(got) == 1  # coalesced

    def test_union_empty(self):
        assert union().is_empty
        assert bytes_of(union([], [Falls(1, 2, 2, 1)])) == {1, 2}

    def test_difference(self):
        got = difference([Falls(0, 9, 10, 1)], [Falls(2, 4, 3, 1)])
        assert bytes_of(got) == {0, 1, 5, 6, 7, 8, 9}

    def test_difference_disjoint(self):
        got = difference([Falls(0, 1, 2, 1)], [Falls(5, 6, 2, 1)])
        assert bytes_of(got) == {0, 1}

    def test_difference_total(self):
        got = difference([Falls(0, 3, 4, 1)], [Falls(0, 7, 8, 1)])
        assert got.is_empty

    def test_randomised_oracle(self):
        rng = np.random.default_rng(17)
        for _ in range(100):
            def rand_family():
                out = []
                pos = 0
                for _ in range(rng.integers(1, 4)):
                    pos += int(rng.integers(0, 5))
                    blen = int(rng.integers(1, 5))
                    s = blen + int(rng.integers(0, 4))
                    n = int(rng.integers(1, 4))
                    f = Falls(pos, pos + blen - 1, s, n)
                    out.append(f)
                    pos = f.extent_stop + 1
                return out

            a, b = rand_family(), rand_family()
            assert bytes_of(union(a, b)) == bytes_of(a) | bytes_of(b)
            assert bytes_of(difference(a, b)) == bytes_of(a) - bytes_of(b)
            within = max(
                max((f.extent_stop for f in a), default=0),
                max((f.extent_stop for f in b), default=0),
            ) + 1
            assert bytes_of(complement(a, within)) == (
                set(range(within)) - bytes_of(a)
            )


class TestSameBytes:
    def test_structurally_different_equal(self):
        # One FALLS with 4 blocks == two FALLS with 2 blocks each.
        a = [Falls(0, 1, 4, 4)]
        b = [Falls(0, 1, 4, 2), Falls(8, 9, 4, 2)]
        assert same_bytes(a, b)

    def test_nested_vs_flat(self):
        nested = [Falls(0, 3, 8, 2, (Falls(0, 1, 4, 1),))]
        flat = [Falls(0, 1, 8, 2)]
        assert same_bytes(nested, flat)

    def test_unequal(self):
        assert not same_bytes([Falls(0, 1, 4, 2)], [Falls(0, 1, 4, 3)])
        assert not same_bytes([Falls(0, 1, 4, 2)], [Falls(1, 2, 4, 2)])


class TestPartitionFromElements:
    def test_fill_last(self):
        p = partition_from_elements([[Falls(0, 1, 6, 2)]], fill_last=True)
        assert p.num_elements == 2
        assert p.size == 8
        assert bytes_of(p.elements[1]) == {2, 3, 4, 5}

    def test_no_fill_needed(self):
        p = partition_from_elements(
            [[Falls(0, 1, 4, 1)], [Falls(2, 3, 4, 1)]], fill_last=True
        )
        assert p.num_elements == 2

    def test_explicit_elements_validated(self):
        # {0, 2} alone leaves byte 1 unowned - not a valid pattern.
        with pytest.raises(Exception):
            partition_from_elements([[Falls(0, 0, 2, 2)]], fill_last=False)
        # With fill_last the hole is claimed by the complement element.
        p = partition_from_elements([[Falls(0, 0, 2, 2)]], fill_last=True)
        assert p.num_elements == 2
        assert bytes_of(p.elements[1]) == {1}
