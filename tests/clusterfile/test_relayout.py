"""Tests for on-the-fly physical re-layout (Panda-style, paper §3)."""

import numpy as np
import pytest

from repro import matrix_partition, round_robin, row_blocks
from repro.clusterfile import Clusterfile
from repro.clusterfile.relayout import relayout
from repro.simulation import ClusterConfig

N = 64


def make_file(phys_layout="c", n=N, seed=1):
    data = np.random.default_rng(seed).integers(0, 256, n * n, dtype=np.uint8)
    fs = Clusterfile(ClusterConfig())
    fs.create("m", matrix_partition(phys_layout, n, n, 4))
    logical = row_blocks(n, n, 4)
    for c in range(4):
        fs.set_view("m", c, logical)
    per = n * n // 4
    fs.write("m", [(c, 0, data[c * per : (c + 1) * per]) for c in range(4)])
    return fs, data


class TestRelayout:
    @pytest.mark.parametrize("src", ["r", "c", "b"])
    @pytest.mark.parametrize("dst", ["r", "c", "b"])
    def test_contents_preserved(self, src, dst):
        fs, data = make_file(src)
        res = relayout(fs, "m", matrix_partition(dst, N, N, 4))
        np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)
        assert res.bytes_moved == data.size

    def test_identity_relayout_stays_local(self):
        fs, data = make_file("r")
        res = relayout(fs, "m", matrix_partition("r", N, N, 4))
        assert res.was_identity
        assert res.cross_node_messages == 0
        np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)

    def test_mismatch_crosses_nodes(self):
        fs, _ = make_file("c")
        res = relayout(fs, "m", matrix_partition("r", N, N, 4))
        assert not res.was_identity
        assert res.cross_node_messages == 12  # 16 transfers - 4 local
        assert res.makespan_s > 0

    def test_views_invalidated(self):
        fs, _ = make_file("c")
        assert ("m", 0) in fs.views
        relayout(fs, "m", matrix_partition("r", N, N, 4))
        assert ("m", 0) not in fs.views

    def test_io_continues_after_relayout(self):
        fs, data = make_file("c")
        relayout(fs, "m", matrix_partition("r", N, N, 4))
        logical = row_blocks(N, N, 4)
        for c in range(4):
            fs.set_view("m", c, logical)
        per = N * N // 4
        bufs = fs.read("m", [(c, 0, per) for c in range(4)])
        for c, buf in enumerate(bufs):
            np.testing.assert_array_equal(buf, data[c * per : (c + 1) * per])
        # Writes after re-layout land correctly too.
        newdata = data[::-1].copy()
        fs.write("m", [(c, 0, newdata[c * per : (c + 1) * per]) for c in range(4)])
        np.testing.assert_array_equal(
            fs.linear_contents("m", newdata.size), newdata
        )

    def test_relayout_changes_write_performance(self):
        """The §3 motivation: re-layout to suit the access pattern."""
        fs, data = make_file("c")
        logical = row_blocks(N, N, 4)
        per = N * N // 4
        accesses = [(0, 0, data[:per])]
        fs.set_view("m", 0, logical)
        before = fs.write("m", accesses)
        before_g = before.per_compute[0].t_g
        before_msgs = before.messages

        relayout(fs, "m", matrix_partition("r", N, N, 4))
        fs.set_view("m", 0, logical)
        after = fs.write("m", accesses)
        # Matched layout: no gather, single message pair.
        assert after.per_compute[0].t_g == 0.0
        assert after.messages < before_msgs
        assert before_g > 0

    def test_pattern_size_change(self):
        n = 32
        data = np.random.default_rng(3).integers(0, 256, n * n, dtype=np.uint8)
        fs = Clusterfile(ClusterConfig())
        fs.create("m", round_robin(4, 8))
        fs.set_view("m", 0, round_robin(1, n * n), element=0)
        fs.write("m", [(0, 0, data)])
        relayout(fs, "m", round_robin(4, 12))
        np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)


class TestRelayoutOnDiskStorage:
    def test_file_backed_stores_survive_relayout(self, tmp_path):
        from repro.clusterfile.storage import FileBackedStore, FileStorage

        data = np.random.default_rng(8).integers(0, 256, N * N, dtype=np.uint8)
        fs = Clusterfile(ClusterConfig(), storage=FileStorage(str(tmp_path)))
        fs.create("m", matrix_partition("c", N, N, 4))
        logical = row_blocks(N, N, 4)
        for c in range(4):
            fs.set_view("m", c, logical)
        per = N * N // 4
        fs.write("m", [(c, 0, data[c * per : (c + 1) * per]) for c in range(4)])

        relayout(fs, "m", matrix_partition("r", N, N, 4))
        np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)
        # The new stores are file-backed too, and the old subfile files
        # were removed from disk.
        for store in fs.open("m").stores:
            assert isinstance(store, FileBackedStore)
        names = {p.name for p in tmp_path.iterdir()}
        assert not any(n.startswith("m.subfile") for n in names)
        # And I/O continues to work on the new on-disk stores.
        for c in range(4):
            fs.set_view("m", c, logical)
        buf = fs.read("m", [(0, 0, per)])[0]
        np.testing.assert_array_equal(buf, data[:per])
