"""Tests for two-phase collective I/O."""

import numpy as np
import pytest

from repro import matrix_partition, round_robin
from repro.clusterfile import Clusterfile
from repro.clusterfile.collective import (
    file_domain_partition,
    two_phase_write,
)
from repro.redistribution import distribute
from repro.simulation import ClusterConfig

N = 64


class TestFileDomainPartition:
    def test_even_split(self):
        p = file_domain_partition(100, 4)
        assert p.num_elements == 4
        assert [p.element_size(i) for i in range(4)] == [25, 25, 25, 25]
        for e in p.elements:
            assert e.is_contiguous()

    def test_ragged_split(self):
        p = file_domain_partition(10, 3)
        assert [p.element_size(i) for i in range(3)] == [4, 3, 3]

    def test_more_aggregators_than_bytes(self):
        p = file_domain_partition(2, 5)
        assert p.num_elements == 2

    def test_displacement(self):
        p = file_domain_partition(8, 2, displacement=5)
        assert p.displacement == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            file_domain_partition(0, 4)
        with pytest.raises(ValueError):
            file_domain_partition(8, 0)


def _setup(logical_layout, phys_layout, n=N, seed=0):
    data = np.random.default_rng(seed).integers(0, 256, n * n, dtype=np.uint8)
    logical = matrix_partition(logical_layout, n, n, 4)
    fs = Clusterfile(ClusterConfig())
    fs.create("m", matrix_partition(phys_layout, n, n, 4))
    for c in range(4):
        fs.set_view("m", c, logical)
    src = distribute(data, logical)
    accesses = [(c, 0, src[c]) for c in range(4)]
    return fs, data, accesses


class TestTwoPhaseWrite:
    @pytest.mark.parametrize("logical", ["r", "c", "b"])
    @pytest.mark.parametrize("phys", ["r", "c", "b"])
    def test_byte_exact(self, logical, phys):
        fs, data, accesses = _setup(logical, phys)
        two_phase_write(fs, "m", accesses, to_disk=True)
        np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)

    def test_reduces_fragments_for_mismatched_views(self):
        fs, data, accesses = _setup("c", "r")
        res = two_phase_write(fs, "m", accesses)
        from repro.redistribution import build_plan

        direct_frags = sum(
            t.dst_fragments_per_period
            for t in build_plan(
                matrix_partition("c", N, N, 4), matrix_partition("r", N, N, 4)
            ).transfers
        )
        assert res.scatter_fragments < direct_frags / 10

    def test_shuffle_accounting(self):
        fs, data, accesses = _setup("c", "r")
        res = two_phase_write(fs, "m", accesses)
        # 4 processes x 4 aggregators minus the 4 self-transfers.
        assert res.shuffle_messages == 12
        assert res.shuffle_bytes == data.size * 3 // 4
        assert res.shuffle_time_s > 0

    def test_matched_views_shuffle_free(self):
        # Row views == file-domain chunks: nothing moves off-node.
        fs, data, accesses = _setup("r", "b")
        res = two_phase_write(fs, "m", accesses)
        assert res.shuffle_messages == 0
        assert res.shuffle_bytes == 0
        np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)

    def test_views_restored_after_collective(self):
        fs, data, accesses = _setup("c", "r")
        before = fs.view_of("m", 2).logical
        two_phase_write(fs, "m", accesses)
        assert fs.view_of("m", 2).logical == before
        # Independent I/O still works afterwards.
        per = N * N // 4
        buf = fs.read("m", [(2, 0, per)])[0]
        src = distribute(data, matrix_partition("c", N, N, 4))
        np.testing.assert_array_equal(buf, src[2])

    def test_custom_aggregator_count(self):
        fs, data, accesses = _setup("c", "r")
        res = two_phase_write(fs, "m", accesses, aggregators=2)
        np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)
        assert res.write.messages <= 8

    def test_multi_period_collective(self):
        # Two full logical periods (two matrices back to back).
        data = np.random.default_rng(1).integers(0, 256, 2 * N * N, dtype=np.uint8)
        logical = matrix_partition("c", N, N, 4)
        fs = Clusterfile(ClusterConfig())
        fs.create("m", matrix_partition("r", N, N, 4))
        for c in range(4):
            fs.set_view("m", c, logical)
        src = distribute(data, logical)
        accesses = [(c, 0, src[c]) for c in range(4)]
        two_phase_write(fs, "m", accesses)
        np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)

    def test_unaligned_rejected(self):
        fs, data, accesses = _setup("c", "r")
        bad = [(c, 0, d[: d.size - 4] if c == 0 else d) for c, _, d in accesses]
        with pytest.raises(ValueError):
            two_phase_write(fs, "m", bad)
        with pytest.raises(ValueError):
            two_phase_write(fs, "m", [(c, 1, d) for c, _, d in accesses])
        with pytest.raises(ValueError):
            two_phase_write(fs, "m", accesses[:2])


class TestTwoPhaseRead:
    @pytest.mark.parametrize("logical", ["r", "c", "b"])
    @pytest.mark.parametrize("phys", ["r", "c"])
    def test_roundtrip(self, logical, phys):
        from repro.clusterfile.collective import two_phase_read

        fs, data, accesses = _setup(logical, phys)
        two_phase_write(fs, "m", accesses)
        requests = [(c, 0, a[2].size) for c, a in zip(range(4), accesses)]
        bufs, res = two_phase_read(fs, "m", requests)
        for buf, (_, _, want) in zip(bufs, accesses):
            np.testing.assert_array_equal(buf, want)
        # Shuffle volume depends on the view shape: none for row views
        # (they ARE the file domain), one off-node message per straddled
        # domain for blocks, all-to-all minus self for columns.
        expected = {"r": 0, "b": 4, "c": 12}[logical]
        assert res.shuffle_messages == expected

    def test_matched_views_shuffle_free(self):
        from repro.clusterfile.collective import two_phase_read

        fs, data, accesses = _setup("r", "c")
        two_phase_write(fs, "m", accesses)
        bufs, res = two_phase_read(fs, "m", [(c, 0, a[2].size) for c, a in zip(range(4), accesses)])
        assert res.shuffle_messages == 0
        for buf, (_, _, want) in zip(bufs, accesses):
            np.testing.assert_array_equal(buf, want)

    def test_views_restored(self):
        from repro.clusterfile.collective import two_phase_read

        fs, data, accesses = _setup("c", "r")
        two_phase_write(fs, "m", accesses)
        before = fs.view_of("m", 1).logical
        two_phase_read(fs, "m", [(c, 0, a[2].size) for c, a in zip(range(4), accesses)])
        assert fs.view_of("m", 1).logical == before

    def test_unaligned_rejected(self):
        from repro.clusterfile.collective import two_phase_read

        fs, data, accesses = _setup("c", "r")
        two_phase_write(fs, "m", accesses)
        with pytest.raises(ValueError):
            two_phase_read(fs, "m", [(c, 1, a[2].size) for c, a in zip(range(4), accesses)])
