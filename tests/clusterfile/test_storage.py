"""Tests for the subfile storage backends."""

import numpy as np
import pytest

from repro import matrix_partition, round_robin, row_blocks
from repro.clusterfile import Clusterfile
from repro.clusterfile.storage import FileBackedStore, FileStorage, MemoryStorage
from repro.simulation import ClusterConfig


class TestFileBackedStore:
    def test_basic_write_read(self, tmp_path):
        store = FileBackedStore(0, str(tmp_path / "sub0"))
        store.view(0, 9)[:] = np.arange(10, dtype=np.uint8)
        np.testing.assert_array_equal(store.read(0, 9), np.arange(10))
        assert store.length == 10

    def test_growth_preserves_content(self, tmp_path):
        store = FileBackedStore(0, str(tmp_path / "sub0"))
        store.view(0, 9)[:] = 7
        store.view(0, 200_000 - 1)  # grow past several chunks
        assert store.read(0, 9).tolist() == [7] * 10
        assert store.length == 200_000

    def test_holes_read_zero(self, tmp_path):
        store = FileBackedStore(0, str(tmp_path / "sub0"))
        store.view(100, 109)[:] = 9
        assert store.read(0, 9).tolist() == [0] * 10
        assert store.read(105, 114).tolist() == [9] * 5 + [0] * 5

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "sub0")
        store = FileBackedStore(0, path)
        store.view(0, 3)[:] = [1, 2, 3, 4]
        store.flush()
        del store
        again = FileBackedStore(0, path)
        # Length resumes from the on-disk size (chunk-rounded), and the
        # early bytes survive.
        assert again.read(0, 3).tolist() == [1, 2, 3, 4]

    def test_bad_windows(self, tmp_path):
        store = FileBackedStore(0, str(tmp_path / "s"))
        with pytest.raises(ValueError):
            store.view(3, 2)
        with pytest.raises(ValueError):
            store.read(-1, 2)


class TestFileStorageBackend:
    def test_clusterfile_on_disk(self, tmp_path):
        fs = Clusterfile(ClusterConfig(), storage=FileStorage(str(tmp_path)))
        n = 32
        data = np.random.default_rng(0).integers(0, 256, n * n, dtype=np.uint8)
        fs.create("m", matrix_partition("c", n, n, 4))
        logical = row_blocks(n, n, 4)
        for c in range(4):
            fs.set_view("m", c, logical)
        per = n * n // 4
        fs.write("m", [(c, 0, data[c * per : (c + 1) * per]) for c in range(4)])
        np.testing.assert_array_equal(fs.linear_contents("m", data.size), data)
        # Subfile files exist on disk and hold the column blocks.
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [f"m.subfile{k}" for k in range(4)]

    def test_bytes_actually_on_disk(self, tmp_path):
        fs = Clusterfile(ClusterConfig(), storage=FileStorage(str(tmp_path)))
        fs.create("f", round_robin(4, 4))
        fs.set_view("f", 0, round_robin(4, 4))
        payload = np.arange(16, dtype=np.uint8)
        fs.write("f", [(0, 0, payload)])
        for store in fs.open("f").stores:
            store.flush()
        raw = (tmp_path / "f.subfile0").read_bytes()
        # Element 0 of the round-robin stripe owns bytes 0-3 of each
        # 16-byte period; its subfile starts with the view's first unit.
        assert list(raw[:4]) == [0, 1, 2, 3]

    def test_mixed_backends_coexist(self, tmp_path):
        mem = Clusterfile(ClusterConfig())
        disk = Clusterfile(ClusterConfig(), storage=FileStorage(str(tmp_path)))
        for fs in (mem, disk):
            fs.create("f", round_robin(2, 8))
            fs.set_view("f", 0, round_robin(2, 8))
            fs.write("f", [(0, 0, np.arange(8, dtype=np.uint8))])
        np.testing.assert_array_equal(
            mem.linear_contents("f", 16), disk.linear_contents("f", 16)
        )

    def test_memory_storage_factory(self):
        from repro.clusterfile.file_model import SubfileStore

        store = MemoryStorage().make_store("x", 3)
        assert isinstance(store, SubfileStore)
        assert store.subfile == 3
