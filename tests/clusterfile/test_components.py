"""Unit tests for Clusterfile components: stores, views, servers, facade."""

import numpy as np
import pytest

from repro import Falls, Partition, matrix_partition, row_blocks, round_robin
from repro.clusterfile import Clusterfile, SubfileStore, IOServer
from repro.clusterfile.file_model import ClusterFile
from repro.clusterfile.view import set_view
from repro.core import FallsSet, PeriodicFallsSet
from repro.simulation import Cluster, ClusterConfig


class TestSubfileStore:
    def test_grows_on_demand(self):
        s = SubfileStore(0)
        assert s.length == 0
        w = s.view(10, 19)
        w[:] = 7
        assert s.length == 20
        assert s.data[10:20].tolist() == [7] * 10
        assert s.data[:10].tolist() == [0] * 10

    def test_read_beyond_eof_zero_filled(self):
        s = SubfileStore(0)
        s.view(0, 3)[:] = 9
        out = s.read(2, 7)
        assert out.tolist() == [9, 9, 0, 0, 0, 0]

    def test_invalid_windows(self):
        s = SubfileStore(0)
        with pytest.raises(ValueError):
            s.view(5, 4)
        with pytest.raises(ValueError):
            s.read(-1, 4)

    def test_growth_preserves_content(self):
        s = SubfileStore(0)
        s.view(0, 9)[:] = np.arange(10, dtype=np.uint8)
        s.view(100, 199)  # force reallocation
        assert s.data[:10].tolist() == list(range(10))


class TestClusterFileModel:
    def test_file_length_from_stores(self):
        phys = round_robin(2, 4)
        f = ClusterFile("x", phys)
        assert f.file_length() == 0
        f.stores[0].view(0, 3)  # subfile 0 bytes 0..3 = file bytes 0..3,8..11
        assert f.file_length() == 4
        f.stores[1].view(0, 5)  # subfile 1 byte 5 = file offset 13
        assert f.file_length() == 14

    def test_linear_contents_with_holes(self):
        phys = round_robin(2, 2)
        f = ClusterFile("x", phys)
        f.stores[1].view(0, 1)[:] = [5, 6]
        out = f.linear_contents(8)
        assert out.tolist() == [0, 0, 5, 6, 0, 0, 0, 0]


class TestSetView:
    def test_links_only_intersecting_subfiles(self):
        phys = matrix_partition("b", 32, 32, 4)
        logical = row_blocks(32, 32, 4)
        v = set_view(3, logical, 3, phys)
        assert sorted(v.links) == [2, 3]  # bottom row blocks
        assert v.compute_node == 3
        assert v.size_per_period == 32 * 32 // 4

    def test_identity_detection(self):
        phys = matrix_partition("r", 32, 32, 4)
        logical = row_blocks(32, 32, 4)
        v = set_view(1, logical, 1, phys)
        assert v.links[1].is_identity
        cross = set_view(1, matrix_partition("c", 32, 32, 4), 1, phys)
        assert not any(link.is_identity for link in cross.links.values())

    def test_length_for_file(self):
        logical = row_blocks(32, 32, 4)
        phys = matrix_partition("r", 32, 32, 4)
        v = set_view(0, logical, 0, phys)
        assert v.length_for_file(32 * 32) == 256
        assert v.length_for_file(100) == 100  # first element owns prefix


class TestIOServer:
    def _server(self):
        cluster = Cluster(ClusterConfig())
        store = SubfileStore(0)
        return IOServer(cluster.io_node_for(0), store, cluster.config), store

    def test_contiguous_write(self):
        server, store = self._server()
        proj = PeriodicFallsSet(FallsSet([Falls(0, 15, 16, 1)]), 0, 16)
        payload = np.arange(8, dtype=np.uint8)
        cost = server.write(0, 7, payload, proj, to_disk=False)
        assert cost.runs == 1
        assert cost.disk_s == 0.0
        assert store.data[:8].tolist() == list(range(8))

    def test_scattered_write(self):
        server, store = self._server()
        proj = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 0, 4)
        payload = np.array([1, 2, 3, 4], dtype=np.uint8)
        cost = server.write(0, 7, payload, proj, to_disk=True)
        assert cost.runs == 2
        assert cost.disk_s > 0
        assert store.data[:8].tolist() == [1, 2, 0, 0, 3, 4, 0, 0]

    def test_payload_size_mismatch_rejected(self):
        server, _ = self._server()
        proj = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 0, 4)
        with pytest.raises(ValueError):
            server.write(0, 7, np.zeros(3, np.uint8), proj, to_disk=False)

    def test_read_returns_projection_bytes(self):
        server, store = self._server()
        store.view(0, 7)[:] = np.arange(8, dtype=np.uint8)
        proj = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 0, 4)
        payload, cost = server.read(0, 7, proj, from_disk=True)
        assert payload.tolist() == [0, 1, 4, 5]
        assert cost.nbytes == 4
        assert cost.disk_s > 0

    def test_empty_window(self):
        server, _ = self._server()
        proj = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 0, 4)
        payload, cost = server.read(2, 3, proj, from_disk=False)
        assert payload.size == 0 and cost.nbytes == 0


class TestFacade:
    def test_create_open_unlink(self):
        fs = Clusterfile(ClusterConfig())
        fs.create("a", round_robin(4, 4))
        assert fs.open("a").num_subfiles == 4
        with pytest.raises(FileExistsError):
            fs.create("a", round_robin(4, 4))
        fs.unlink("a")
        with pytest.raises(KeyError):
            fs.open("a")

    def test_read_with_result_returns_timings(self):
        fs = Clusterfile(ClusterConfig())
        fs.create("a", round_robin(4, 4))
        fs.set_view("a", 0, round_robin(4, 4))
        data = np.arange(16, dtype=np.uint8)
        fs.write("a", [(0, 0, data[:4])])
        bufs, result = fs.read_with_result("a", [(0, 0, 4)])
        np.testing.assert_array_equal(bufs[0], data[:4])
        assert result.per_compute[0].t_w_bc > 0

    def test_default_view_element_is_node_index(self):
        fs = Clusterfile(ClusterConfig())
        fs.create("a", round_robin(4, 4))
        v = fs.set_view("a", 2, round_robin(4, 4))
        assert v.element == 2
        v = fs.set_view("a", 2, round_robin(4, 4), element=0)
        assert v.element == 0
