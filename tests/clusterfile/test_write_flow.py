"""Clusterfile integration tests: the §8.1 write/read flow end to end."""

import numpy as np
import pytest

from repro.clusterfile import Clusterfile
from repro.core import Falls, FallsSet, Partition
from repro.distributions import matrix_partition, row_blocks
from repro.simulation import ClusterConfig

N = 32
LAYOUTS = ["r", "c", "b"]


def make_fs():
    return Clusterfile(ClusterConfig(compute_nodes=4, io_nodes=4))


def write_matrix(fs, name, phys_layout, data, n=N, to_disk=False):
    phys = matrix_partition(phys_layout, n, n, 4)
    logical = row_blocks(n, n, 4)
    fs.create(name, phys)
    for c in range(4):
        fs.set_view(name, c, logical)
    per = n * n // 4
    accesses = [(c, 0, data[c * per : (c + 1) * per]) for c in range(4)]
    return fs.write(name, accesses, to_disk=to_disk)


@pytest.fixture()
def matrix_data():
    rng = np.random.default_rng(42)
    return rng.integers(0, 256, N * N, dtype=np.uint8)


class TestWriteReadRoundtrip:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_write_then_linear_contents(self, matrix_data, layout):
        fs = make_fs()
        write_matrix(fs, "m", layout, matrix_data)
        np.testing.assert_array_equal(
            fs.linear_contents("m", matrix_data.size), matrix_data
        )

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_write_then_view_read(self, matrix_data, layout):
        fs = make_fs()
        write_matrix(fs, "m", layout, matrix_data)
        per = N * N // 4
        bufs = fs.read("m", [(c, 0, per) for c in range(4)])
        for c, buf in enumerate(bufs):
            np.testing.assert_array_equal(buf, matrix_data[c * per : (c + 1) * per])

    def test_cross_layout_views(self, matrix_data):
        """Write through row views, read back through column views."""
        fs = make_fs()
        write_matrix(fs, "m", "b", matrix_data)
        cols = matrix_partition("c", N, N, 4)
        for c in range(4):
            fs.set_view("m", c, cols)
        per = N * N // 4
        bufs = fs.read("m", [(c, 0, per) for c in range(4)])
        mat = matrix_data.reshape(N, N)
        for c, buf in enumerate(bufs):
            want = mat[:, c * (N // 4) : (c + 1) * (N // 4)].reshape(-1)
            np.testing.assert_array_equal(buf, want)

    def test_partial_interval_write(self, matrix_data):
        fs = make_fs()
        phys = matrix_partition("c", N, N, 4)
        fs.create("m", phys)
        logical = row_blocks(N, N, 4)
        fs.set_view("m", 1, logical)
        chunk = matrix_data[:100]
        fs.write("m", [(1, 37, chunk)])
        got = fs.read("m", [(1, 37, 100)])[0]
        np.testing.assert_array_equal(got, chunk)

    def test_repeated_writes_overwrite(self, matrix_data):
        fs = make_fs()
        write_matrix(fs, "m", "c", matrix_data)
        per = N * N // 4
        newdata = (matrix_data[::-1]).copy()
        fs.write(
            "m", [(c, 0, newdata[c * per : (c + 1) * per]) for c in range(4)]
        )
        np.testing.assert_array_equal(
            fs.linear_contents("m", newdata.size), newdata
        )


class TestViewState:
    def test_view_links_match_partitions(self):
        fs = make_fs()
        phys = matrix_partition("b", N, N, 4)
        fs.create("m", phys)
        v = fs.set_view("m", 0, row_blocks(N, N, 4))
        # Row block 0 spans the two top square blocks only.
        assert sorted(v.links) == [0, 1]
        assert v.set_time_s > 0

    def test_identity_view_is_single_contiguous_link(self):
        fs = make_fs()
        phys = matrix_partition("r", N, N, 4)
        fs.create("m", phys)
        v = fs.set_view("m", 2, row_blocks(N, N, 4))
        assert sorted(v.links) == [2]
        link = v.links[2]
        per = N * N // 4
        assert link.proj_view.is_contiguous_in(0, per - 1)
        assert link.proj_subfile.is_contiguous_in(0, per - 1)

    def test_view_for_unknown_node_rejected(self):
        fs = make_fs()
        fs.create("m", matrix_partition("r", N, N, 4))
        with pytest.raises(ValueError):
            fs.set_view("m", 99, row_blocks(N, N, 4))

    def test_displaced_file(self):
        """Views on a file whose partitioning starts at a displacement."""
        fs = make_fs()
        phys = Partition(
            [Falls(0, 3, 16, 1), Falls(4, 7, 16, 1), Falls(8, 11, 16, 1),
             Falls(12, 15, 16, 1)],
            displacement=8,
        )
        fs.create("d", phys)
        logical = Partition(
            [Falls(0, 15, 64, 1), Falls(16, 31, 64, 1), Falls(32, 47, 64, 1),
             Falls(48, 63, 64, 1)],
            displacement=8,
        )
        data = np.arange(64, dtype=np.uint8)
        for c in range(4):
            fs.set_view("d", c, logical)
        fs.write("d", [(c, 0, data[c * 16 : (c + 1) * 16]) for c in range(4)])
        got = fs.linear_contents("d", 72)
        np.testing.assert_array_equal(got[8:], data)
        assert not got[:8].any()


class TestTimingShapes:
    """The qualitative relations the paper reports (§8.2)."""

    def run_layouts(self, n, to_disk=False):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, n * n, dtype=np.uint8)
        out = {}
        for layout in LAYOUTS:
            fs = make_fs()
            res = write_matrix(fs, "m", layout, data, n=n, to_disk=to_disk)
            out[layout] = res
        return out

    def test_gather_time_zero_for_matching_layouts(self):
        res = self.run_layouts(N)
        bd_r = res["r"].per_compute[0]
        assert bd_r.t_g == 0.0

    def test_gather_time_ordering(self):
        # Measured wall time: warm up, take medians over several runs,
        # and use a size large enough for the copies to dominate noise.
        self.run_layouts(256)  # warmup
        samples = {k: [] for k in LAYOUTS}
        for _ in range(5):
            res = self.run_layouts(256)
            for k, v in res.items():
                samples[k].append(
                    np.mean([bd.t_g for bd in v.per_compute.values()])
                )
        med = {k: float(np.median(v)) for k, v in samples.items()}
        assert med["r"] == 0.0
        assert med["c"] > med["r"]
        assert med["b"] > med["r"]
        # c fragments finer than b; allow a noise margin on their order.
        assert med["c"] > 0.7 * med["b"]

    def test_intersection_time_ordering(self):
        # t_i is a measured wall time; take medians over several runs.
        self.run_layouts(256)  # warmup
        samples = {k: [] for k in LAYOUTS}
        for _ in range(5):
            res = self.run_layouts(256)
            for k, v in res.items():
                samples[k].append(v.per_compute[0].t_i)
        med = {k: float(np.median(v)) for k, v in samples.items()}
        assert med["c"] > med["r"]
        assert med["b"] > med["r"]

    def test_write_time_ordering_small_sizes(self):
        res = self.run_layouts(64, to_disk=True)
        t_bc = {
            k: max(bd.t_w_bc for bd in v.per_compute.values()) for k, v in res.items()
        }
        t_disk = {
            k: max(bd.t_w_disk for bd in v.per_compute.values())
            for k, v in res.items()
        }
        assert t_bc["c"] > t_bc["r"]
        assert t_disk["c"] > t_disk["r"]
        for k in LAYOUTS:
            assert t_disk[k] > t_bc[k]

    def test_message_counts(self):
        res = self.run_layouts(N)
        # r-r: one message pair per node; c-r: all-to-all.
        assert res["c"].payload_bytes == res["r"].payload_bytes == N * N
        assert res["c"].messages > res["b"].messages > res["r"].messages


class TestScatterBreakdowns:
    def test_per_io_node_times(self, matrix_data):
        fs = make_fs()
        res = write_matrix(fs, "m", "c", matrix_data, to_disk=True)
        assert set(res.per_io) == {0, 1, 2, 3}
        for sb in res.per_io.values():
            assert sb.t_sc_disk > sb.t_sc_bc > 0

    def test_matched_layout_scatters_cheaper(self, matrix_data):
        fs_r = make_fs()
        r = write_matrix(fs_r, "m", "r", matrix_data, to_disk=True)
        fs_c = make_fs()
        c = write_matrix(fs_c, "m", "c", matrix_data, to_disk=True)
        mean_r = np.mean([sb.t_sc_bc for sb in r.per_io.values()])
        mean_c = np.mean([sb.t_sc_bc for sb in c.per_io.values()])
        assert mean_c > mean_r
