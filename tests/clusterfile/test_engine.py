"""Tests for the unified I/O engine: trace round-trips, breakdown
derivation, transports, and the engine-level metrics counters."""

import json

import numpy as np
import pytest

from repro.clusterfile import Clusterfile
from repro.clusterfile.engine import (
    DirectTransport,
    SimMessage,
    SimulatedTransport,
    breakdowns_from_trace,
    run_shuffle,
)
from repro.distributions import matrix_partition, row_blocks
from repro.obs import metrics
from repro.obs.export import trace_to_chrome, trace_to_dict
from repro.obs.span import Span
from repro.redistribution import distribute, get_plan
from repro.simulation import Cluster, ClusterConfig
from repro.simulation.network import NetworkModel

N = 32


def make_fs():
    return Clusterfile(ClusterConfig(compute_nodes=4, io_nodes=4))


def write_matrix(fs, name, phys_layout, data, n=N, to_disk=False):
    phys = matrix_partition(phys_layout, n, n, 4)
    logical = row_blocks(n, n, 4)
    fs.create(name, phys)
    for c in range(4):
        fs.set_view(name, c, logical)
    per = n * n // 4
    accesses = [(c, 0, data[c * per : (c + 1) * per]) for c in range(4)]
    return fs.write(name, accesses, to_disk=to_disk)


@pytest.fixture()
def matrix_data():
    rng = np.random.default_rng(42)
    return rng.integers(0, 256, N * N, dtype=np.uint8)


class TestTraceRoundTrip:
    """Acceptance: the exported trace contains every phase of a
    parallel write."""

    def test_write_trace_has_every_phase(self, matrix_data):
        fs = make_fs()
        res = write_matrix(fs, "m", "c", matrix_data, to_disk=True)
        names = res.trace.phase_names()
        for phase in (
            "parallel_write",
            "client.prepare",
            "map",
            "gather",
            "server.write",
            "transport",
        ):
            assert phase in names, f"missing {phase}"
        # The modelled device activity is in the same tree.
        transport = res.trace.find("transport")
        sim_lanes = {c.name for c in transport.children}
        assert any(n.endswith(".cpu") for n in sim_lanes)
        assert any(n.endswith(".disk") for n in sim_lanes)

    def test_phases_survive_export(self, matrix_data):
        fs = make_fs()
        res = write_matrix(fs, "m", "b", matrix_data, to_disk=True)
        dumped = json.loads(json.dumps(trace_to_dict(res.trace)))

        def names(node, acc):
            acc.add(node["name"])
            for c in node.get("children", ()):
                names(c, acc)
            return acc

        exported = names(dumped[0], set())
        assert set(res.trace.phase_names()) <= exported
        chrome = trace_to_chrome(res.trace)
        chrome_names = {e["name"] for e in chrome if e.get("ph") == "X"}
        for phase in ("parallel_write", "map", "gather", "transport"):
            assert phase in chrome_names

    def test_read_trace_phases(self, matrix_data):
        fs = make_fs()
        write_matrix(fs, "m", "c", matrix_data)
        per = N * N // 4
        _, res = fs.read_with_result(
            "m", [(c, 0, per) for c in range(4)], from_disk=True
        )
        names = res.trace.phase_names()
        for phase in ("parallel_read", "client.prepare", "server.read",
                      "scatter", "transport"):
            assert phase in names, f"missing {phase}"


class TestBreakdownDerivation:
    """The Table 1/2 records are a pure function of the span tree."""

    def test_result_matches_rederivation(self, matrix_data):
        fs = make_fs()
        res = write_matrix(fs, "m", "c", matrix_data, to_disk=True)
        per_compute, per_io = breakdowns_from_trace(res.trace)
        assert set(per_compute) == set(res.per_compute) == {0, 1, 2, 3}
        for node in per_compute:
            a, b = per_compute[node], res.per_compute[node]
            assert (a.t_i, a.t_m, a.t_g, a.t_w_bc, a.t_w_disk) == (
                b.t_i, b.t_m, b.t_g, b.t_w_bc, b.t_w_disk,
            )
        for node in per_io:
            a, b = per_io[node], res.per_io[node]
            assert (a.t_sc_bc, a.t_sc_disk) == (b.t_sc_bc, b.t_sc_disk)

    def test_fields_tie_to_named_spans(self, matrix_data):
        fs = make_fs()
        res = write_matrix(fs, "m", "c", matrix_data, to_disk=True)
        prep = [
            s for s in res.trace.children if s.name == "client.prepare"
        ]
        for sp in prep:
            node = sp.attrs["compute"]
            bd = res.per_compute[node]
            assert bd.t_i == sp.attrs["t_i_us"]
            assert bd.t_m == pytest.approx(
                sum(c.wall_us for c in sp.children if c.name == "map")
            )
            assert bd.t_g == pytest.approx(
                sum(c.wall_us for c in sp.children if c.name == "gather")
            )
        transport = res.trace.find("transport")
        for node, bd in res.per_compute.items():
            assert bd.t_w_bc == pytest.approx(
                transport.attrs["done_bc"][node] * 1e6
            )
            assert bd.t_w_disk == pytest.approx(
                transport.attrs["done_disk"][node] * 1e6
            )

    def test_modelled_fields_deterministic(self, matrix_data):
        runs = []
        for _ in range(2):
            fs = make_fs()
            res = write_matrix(fs, "m", "b", matrix_data, to_disk=True)
            runs.append(res)
        for node in runs[0].per_compute:
            assert (
                runs[0].per_compute[node].t_w_bc
                == runs[1].per_compute[node].t_w_bc
            )
            assert (
                runs[0].per_compute[node].t_w_disk
                == runs[1].per_compute[node].t_w_disk
            )
        for node in runs[0].per_io:
            assert (
                runs[0].per_io[node].t_sc_disk
                == runs[1].per_io[node].t_sc_disk
            )


class TestHeaderBytesConfig:
    def test_default_and_validation(self):
        assert ClusterConfig().header_bytes == 16
        with pytest.raises(ValueError):
            ClusterConfig(header_bytes=-1)

    def test_header_cost_flows_from_config(self, matrix_data):
        small = Clusterfile(ClusterConfig(header_bytes=16))
        large = Clusterfile(ClusterConfig(header_bytes=1 << 20))
        t = {}
        for key, fs in (("small", small), ("large", large)):
            res = write_matrix(fs, "m", "c", matrix_data)
            t[key] = max(bd.t_w_bc for bd in res.per_compute.values())
        assert t["large"] > t["small"]


class TestSimulatedTransport:
    def test_lane_serialisation_and_stages(self):
        cluster = Cluster(ClusterConfig())
        transport = SimulatedTransport(cluster)
        node = cluster.io[0]
        msgs = [
            SimMessage(key="a", lane="nic", lane_s=1.0,
                       stages=((node.cpu, 0.5, "bc"),)),
            SimMessage(key="b", lane="nic", lane_s=1.0,
                       stages=((node.cpu, 0.5, "bc"),)),
        ]
        done = transport.run(msgs)
        # Same lane: second message leaves at t=2; same CPU: its service
        # starts only after the first one's finishes.
        assert done["bc"]["a"] == pytest.approx(1.5)
        assert done["bc"]["b"] == pytest.approx(2.5)

    def test_ack_and_post_lane(self):
        cluster = Cluster(ClusterConfig())
        transport = SimulatedTransport(cluster)
        node = cluster.io[1]
        done = transport.run([
            SimMessage(key="k", lane="l", lane_s=1.0, post_lane_s=0.25,
                       stages=((node.cpu, 0.5, "bc"),), ack_s=0.125),
        ])
        assert done["bc"]["k"] == pytest.approx(1.875)

    def test_trace_span_collects_resource_spans(self):
        cluster = Cluster(ClusterConfig())
        transport = SimulatedTransport(cluster)
        node = cluster.io[0]
        root = Span("transport")
        transport.run(
            [SimMessage(key="k", lane="l", lane_s=0.0,
                        stages=((node.cpu, 0.5, "bc"),))],
            trace_span=root,
        )
        (sp,) = root.children
        assert sp.name == "io0.cpu"
        assert sp.sim_s == pytest.approx(0.5)

    def test_stage_less_message_only_holds_lane(self):
        cluster = Cluster(ClusterConfig())
        done = SimulatedTransport(cluster).run(
            [SimMessage(key="k", lane="l", lane_s=3.0)]
        )
        assert done == {}


class TestDirectTransport:
    def test_counts_and_cost(self):
        net = NetworkModel(latency_s=0.01, bandwidth_Bps=1000.0)
        messages, off_node, time_s = DirectTransport(net).cost(
            [(0, 0, 100), (0, 1, 100), (1, 0, 200), (2, 2, 50), (1, 2, 0)]
        )
        assert messages == 2
        assert off_node == 300
        # Slowest sender: node 1 ships 200 B.
        assert time_s == pytest.approx(0.01 + 200 / 1000.0)

    def test_no_network_is_free_but_counted(self):
        messages, off_node, time_s = DirectTransport(None).cost(
            [(0, 1, 10)]
        )
        assert (messages, off_node, time_s) == (1, 10, 0.0)


class TestRunShuffle:
    def test_shuffle_moves_bytes_and_traces(self):
        src = matrix_partition("r", N, N, 4)
        dst = matrix_partition("c", N, N, 4)
        data = np.arange(N * N, dtype=np.uint8)
        plan = get_plan(src, dst)
        sh = run_shuffle(plan, distribute(data, src), N * N)
        assert sh.trace.find("move") is not None
        assert sh.time_s == 0.0  # no network model
        assert sh.off_node_bytes > 0
        from repro.redistribution import collect

        np.testing.assert_array_equal(
            collect(sh.buffers, dst, N * N), data
        )


class TestEngineMetrics:
    def test_write_counters(self, matrix_data):
        before = metrics.snapshot("engine.write")
        fs = make_fs()
        res = write_matrix(fs, "m", "c", matrix_data)
        after = metrics.snapshot("engine.write")
        assert after["engine.write.ops"] == before.get("engine.write.ops", 0) + 1
        assert (
            after["engine.write.payload_bytes"]
            == before.get("engine.write.payload_bytes", 0) + res.payload_bytes
        )
        assert (
            after["engine.write.messages"]
            == before.get("engine.write.messages", 0) + res.messages
        )

    def test_plan_cache_counters_mirrored(self):
        from repro.redistribution import clear_plan_cache, get_plan

        clear_plan_cache()
        assert metrics.snapshot("plan_cache.global") == {}
        src = matrix_partition("r", N, N, 4)
        dst = matrix_partition("c", N, N, 4)
        get_plan(src, dst)
        get_plan(src, dst)
        snap = metrics.snapshot("plan_cache.global")
        assert snap["plan_cache.global.misses"] == 1
        assert snap["plan_cache.global.hits"] == 1
        clear_plan_cache()

    def test_build_plan_counters(self):
        from repro.redistribution import build_plan

        before = metrics.snapshot("build_plan")
        src = matrix_partition("r", N, N, 4)
        dst = matrix_partition("b", N, N, 4)
        plan = build_plan(src, dst)
        after = metrics.snapshot("build_plan")
        assert after["build_plan.calls"] == before.get("build_plan.calls", 0) + 1
        assert (
            after["build_plan.candidate_pairs"]
            - before.get("build_plan.candidate_pairs", 0)
            == plan.candidate_pairs
        )
        assert (
            after["build_plan.pruned_pairs"]
            - before.get("build_plan.pruned_pairs", 0)
            == plan.pruned_pairs
        )
