"""The paper's §8.2 observation, tested directly: "Because I/O servers
are running in parallel, t_w ... [is] limited by the slowest I/O
server."  We build a heterogeneous cluster with one slow disk and check
who sets the completion time."""

import numpy as np
import pytest

from repro import matrix_partition, row_blocks
from repro.clusterfile import Clusterfile
from repro.simulation import Cluster, ClusterConfig, DiskModel

N = 256


def heterogeneous_fs(slow_node: int, slow_factor: float = 8.0):
    config = ClusterConfig()
    base = config.disk
    slow = DiskModel(
        avg_seek_s=base.avg_seek_s * slow_factor,
        rotational_latency_s=base.rotational_latency_s * slow_factor,
        transfer_Bps=base.transfer_Bps / slow_factor,
        per_request_s=base.per_request_s * slow_factor,
    )
    models = [slow if i == slow_node else base for i in range(config.io_nodes)]
    fs = Clusterfile(config)
    fs.cluster = Cluster(config, disk_models=models)
    return fs


def run_write(fs, layout="r"):
    data = np.zeros(N * N, dtype=np.uint8)
    fs.create("m", matrix_partition(layout, N, N, 4))
    logical = row_blocks(N, N, 4)
    for c in range(4):
        fs.set_view("m", c, logical)
    per = N * N // 4
    return fs.write(
        "m", [(c, 0, data[c * per : (c + 1) * per]) for c in range(4)],
        to_disk=True,
    )


class TestSlowestServer:
    def test_matched_layout_only_one_compute_suffers(self):
        """With 1:1 pairing (r-r), only the compute node paired with the
        slow disk slows down."""
        res = run_write(heterogeneous_fs(slow_node=2))
        times = {c: bd.t_w_disk for c, bd in res.per_compute.items()}
        assert times[2] > 3 * max(times[c] for c in (0, 1, 3))

    def test_mismatched_layout_everyone_waits(self):
        """With all-to-all (c-r), every compute node touches the slow
        disk and the whole operation is limited by it."""
        res = run_write(heterogeneous_fs(slow_node=2), layout="c")
        times = [bd.t_w_disk for bd in res.per_compute.values()]
        fast = run_write(heterogeneous_fs(slow_node=2, slow_factor=1.0),
                         layout="c")
        fast_times = [bd.t_w_disk for bd in fast.per_compute.values()]
        # All four computes are slowed, not just one: even the quickest
        # finisher waits longer than anyone did on the uniform cluster,
        # and each compute slows down markedly against its own baseline.
        assert min(times) > max(fast_times)
        for slow_t, fast_t in zip(sorted(times), sorted(fast_times)):
            assert slow_t > 1.5 * fast_t

    def test_makespan_tracks_slow_factor(self):
        makespans = []
        for factor in (1.0, 4.0, 16.0):
            res = run_write(heterogeneous_fs(0, factor))
            makespans.append(max(bd.t_w_disk for bd in res.per_compute.values()))
        assert makespans[0] < makespans[1] < makespans[2]

    def test_disk_models_arity_validated(self):
        with pytest.raises(ValueError):
            Cluster(ClusterConfig(io_nodes=4), disk_models=[DiskModel()] * 3)
