"""FaultPlan / FaultInjector: determinism, scoping, serialisation."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultRule, checksum


class TestFaultRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="lightning")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule(kind="drop", rate=1.5)

    def test_node_rules_need_io_node(self):
        with pytest.raises(ValueError, match="io_node"):
            FaultRule(kind="crash")
        with pytest.raises(ValueError, match="io_node"):
            FaultRule(kind="slow_disk", factor=2.0)

    def test_slow_disk_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            FaultRule(kind="slow_disk", io_node=0, factor=0.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultRule(kind="delay", delay_s=-1.0)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            rules=(
                FaultRule(kind="drop", rate=0.1, op="write"),
                FaultRule(kind="corrupt", rate=0.2, subfile=3),
                FaultRule(kind="delay", rate=1.0, delay_s=0.01),
                FaultRule(kind="crash", io_node=2, after_ops=1),
                FaultRule(kind="slow_disk", io_node=0, factor=4.0),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_crashed_nodes_respects_after_ops(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", io_node=1, after_ops=2),))
        assert plan.crashed_nodes(0) == frozenset()
        assert plan.crashed_nodes(1) == frozenset()
        assert plan.crashed_nodes(2) == frozenset({1})
        assert plan.crashed_nodes(5) == frozenset({1})

    def test_disk_factors_compose(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="slow_disk", io_node=0, factor=2.0),
                FaultRule(kind="slow_disk", io_node=0, factor=3.0),
            )
        )
        assert plan.disk_factor(0) == 6.0
        assert plan.disk_factor(1) == 1.0


class TestInjectorDeterminism:
    PLAN = FaultPlan(
        seed=11,
        rules=(
            FaultRule(kind="drop", rate=0.3),
            FaultRule(kind="corrupt", rate=0.3),
            FaultRule(kind="delay", rate=0.5, delay_s=0.002),
        ),
    )

    def _fates(self, injector):
        op_id = injector.begin_op("write")
        return [
            injector.message_fate(op_id, "write", c, s, a)
            for c in range(4)
            for s in range(4)
            for a in range(3)
        ]

    def test_same_plan_same_schedule(self):
        assert self._fates(FaultInjector(self.PLAN)) == self._fates(
            FaultInjector(self.PLAN)
        )

    def test_different_seed_different_schedule(self):
        other = FaultPlan(seed=12, rules=self.PLAN.rules)
        assert self._fates(FaultInjector(self.PLAN)) != self._fates(
            FaultInjector(other)
        )

    def test_schedule_varies_with_attempt(self):
        injector = FaultInjector(self.PLAN)
        op_id = injector.begin_op("write")
        fates = {
            injector.message_fate(op_id, "write", 0, 0, a)[0]
            for a in range(64)
        }
        assert len(fates) > 1  # retries eventually see a different fate

    def test_scope_filters(self):
        plan = FaultPlan(
            seed=0, rules=(FaultRule(kind="drop", rate=1.0, op="read"),)
        )
        injector = FaultInjector(plan)
        op_id = injector.begin_op("write")
        assert injector.message_fate(op_id, "write", 0, 0, 0)[0] == "ok"
        assert injector.message_fate(op_id, "read", 0, 0, 0)[0] == "drop"

    def test_op_counter(self):
        injector = FaultInjector(self.PLAN)
        assert injector.begin_op("write") == 0
        assert injector.begin_op("read") == 1
        assert injector.ops_started == 2


class TestCorruptPayload:
    def test_returns_copy_with_one_flipped_byte(self):
        injector = FaultInjector(FaultPlan(seed=3))
        payload = np.arange(32, dtype=np.uint8)
        before = payload.copy()
        out = injector.corrupt_payload(payload, "tok", 1)
        np.testing.assert_array_equal(payload, before)  # original intact
        assert out is not payload
        assert (out != payload).sum() == 1

    def test_deterministic_flip_position(self):
        injector = FaultInjector(FaultPlan(seed=3))
        payload = np.arange(32, dtype=np.uint8)
        a = injector.corrupt_payload(payload, "tok")
        b = injector.corrupt_payload(payload, "tok")
        np.testing.assert_array_equal(a, b)

    def test_empty_payload_survives(self):
        injector = FaultInjector(FaultPlan(seed=3))
        out = injector.corrupt_payload(np.empty(0, np.uint8), "tok")
        assert out.size == 0
        # An "un-corruptible" empty payload still checksums as itself.
        assert checksum(out) == checksum(np.empty(0, np.uint8))


class TestChecksum:
    def test_detects_single_byte_flip(self):
        payload = np.arange(64, dtype=np.uint8)
        corrupted = payload.copy()
        corrupted[17] ^= 0xFF
        assert checksum(payload) != checksum(corrupted)

    def test_handles_non_contiguous_input(self):
        payload = np.arange(64, dtype=np.uint8)
        assert checksum(payload[::2]) == checksum(
            np.ascontiguousarray(payload[::2])
        )
