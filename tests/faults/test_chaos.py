"""End-to-end chaos: byte-exactness of all four data paths under
injected faults, reproducibility of the schedule, and the hard failure
modes (budget exhaustion, no live replica)."""

import numpy as np
import pytest

from repro import build_plan, distribute, round_robin
from repro.clusterfile import Clusterfile
from repro.clusterfile.engine import run_shuffle
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    NoLiveReplica,
    RetryBudgetExceeded,
    RetryPolicy,
)
from repro.faults.chaos import default_plan, run_chaos
from repro.simulation import ClusterConfig


def _small_fs(plan, replication=1, policy=None):
    fs = Clusterfile(
        ClusterConfig(),
        fault_injector=FaultInjector(plan) if plan is not None else None,
        retry_policy=policy,
    )
    fs.create("f", round_robin(4, 8), replication=replication)
    for node in range(4):
        fs.set_view("f", node, round_robin(4, 8), element=node)
    return fs


class TestByteExactnessUnderChaos:
    def test_all_paths_survive_drop_and_corrupt(self):
        plan = default_plan(seed=0, drop=0.10, corrupt=0.10)
        report, ok = run_chaos(plan, n_bytes=2048, nprocs=4, replication=2)
        assert ok, report
        assert all(p["ok"] for p in report["paths"].values())

    def test_all_paths_survive_single_crash(self):
        plan = default_plan(
            seed=1, drop=0.05, corrupt=0.05, crash_node=1, slow_node=0,
            slow_factor=2.0,
        )
        report, ok = run_chaos(plan, n_bytes=2048, nprocs=4, replication=2)
        assert ok, report
        # A crashed primary forces the read path to fail over and the
        # write path to acknowledge degradation.
        assert report["paths"]["write_read"]["failed_over"] > 0
        assert report["paths"]["write_read"]["degraded"]

    def test_same_seed_reproduces_the_report(self):
        plan = default_plan(seed=5, drop=0.10, corrupt=0.10)
        a, _ = run_chaos(plan, n_bytes=1024, nprocs=4, replication=2)
        b, _ = run_chaos(plan, n_bytes=1024, nprocs=4, replication=2)
        # Global metrics differ (process-wide counters); the per-path
        # recovery facts and the plan must match exactly.
        assert a["paths"] == b["paths"]
        assert a["plan"] == b["plan"]

    def test_empty_plan_matches_fault_free_contents(self):
        data = {n: np.full(16, n + 1, np.uint8) for n in range(4)}
        injected = _small_fs(FaultPlan())
        plain = _small_fs(None)
        for fs in (injected, plain):
            fs.write("f", [(n, 0, data[n]) for n in range(4)], to_disk=True)
        np.testing.assert_array_equal(
            injected.linear_contents("f", 64), plain.linear_contents("f", 64)
        )

    def test_result_fields_quiet_without_faults(self):
        fs = _small_fs(FaultPlan())
        res = fs.write("f", [(0, 0, np.ones(16, np.uint8))])
        assert res.retries == 0
        assert not res.failed_over
        assert not res.degraded


class TestHardFailureModes:
    POLICY = RetryPolicy(max_retries=2)

    def test_certain_drop_exhausts_the_budget(self):
        plan = FaultPlan(seed=0, rules=(FaultRule(kind="drop", rate=1.0),))
        fs = _small_fs(plan, policy=self.POLICY)
        with pytest.raises(RetryBudgetExceeded):
            fs.write("f", [(0, 0, np.ones(16, np.uint8))])

    def test_certain_corruption_exhausts_the_budget(self):
        plan = FaultPlan(seed=0, rules=(FaultRule(kind="corrupt", rate=1.0),))
        fs = _small_fs(plan, policy=self.POLICY)
        with pytest.raises(RetryBudgetExceeded):
            fs.write("f", [(0, 0, np.ones(16, np.uint8))])

    def test_unreplicated_crash_means_no_live_replica(self):
        plan = FaultPlan(seed=0, rules=(FaultRule(kind="crash", io_node=0),))
        fs = _small_fs(plan, replication=1)
        with pytest.raises(NoLiveReplica):
            fs.write("f", [(0, 0, np.ones(16, np.uint8))])

    def test_replica_saves_the_same_write(self):
        plan = FaultPlan(seed=0, rules=(FaultRule(kind="crash", io_node=0),))
        fs = _small_fs(plan, replication=2)
        res = fs.write("f", [(0, 0, np.full(16, 9, np.uint8))], to_disk=True)
        assert res.degraded
        got, rres = fs.read_with_result("f", [(0, 0, 16)], from_disk=True)
        assert got[0].tolist() == [9] * 16
        assert rres.failed_over > 0


class TestExecutorVariantsUnderChaos:
    """The parallel and windowed (out-of-core) executors under fault
    injection: same bytes, same deterministic retry schedule, same
    budget failures as the serial robust path."""

    @staticmethod
    def _case(seed=3):
        src = round_robin(4, 8)
        dst = round_robin(2, 16)
        length = 320
        data = np.random.default_rng(seed).integers(
            0, 256, length, dtype=np.uint8
        )
        return build_plan(src, dst), distribute(data, src), length

    FAULTS = FaultPlan(
        seed=7,
        rules=(
            FaultRule(kind="drop", rate=0.25, op="shuffle"),
            FaultRule(kind="corrupt", rate=0.25, op="shuffle"),
        ),
    )

    def test_variants_byte_identical_under_drop_and_corrupt(self):
        plan, src_buffers, length = self._case()
        # Fresh injector per call: every run is operation id 0 of the
        # same fault plan, so all three draw identical fates.
        serial = run_shuffle(
            plan, src_buffers, length, injector=FaultInjector(self.FAULTS)
        )
        assert serial.retries > 0  # the plan actually bites
        threaded = run_shuffle(
            plan,
            src_buffers,
            length,
            parallel=True,
            injector=FaultInjector(self.FAULTS),
        )
        windowed = run_shuffle(
            plan,
            src_buffers,
            length,
            injector=FaultInjector(self.FAULTS),
            window_bytes=13,
        )
        for variant in (threaded, windowed):
            assert variant.retries == serial.retries
            for a, b in zip(serial.buffers, variant.buffers):
                np.testing.assert_array_equal(a, b)

    def test_budget_exhaustion_hits_every_variant(self):
        plan, src_buffers, length = self._case()
        certain = FaultPlan(
            seed=0, rules=(FaultRule(kind="drop", rate=1.0),)
        )
        policy = RetryPolicy(max_retries=2)
        for kwargs in (
            {},
            {"parallel": True},
            {"window_bytes": 17},
        ):
            with pytest.raises(RetryBudgetExceeded):
                run_shuffle(
                    plan,
                    src_buffers,
                    length,
                    injector=FaultInjector(certain),
                    retry_policy=policy,
                    **kwargs,
                )

    def test_fault_free_windowed_path_matches_plain(self):
        plan, src_buffers, length = self._case()
        plain = run_shuffle(plan, src_buffers, length)
        windowed = run_shuffle(plan, src_buffers, length, window_bytes=11)
        for a, b in zip(plain.buffers, windowed.buffers):
            np.testing.assert_array_equal(a, b)

    def test_parallel_and_windowed_are_mutually_exclusive(self):
        plan, src_buffers, length = self._case()
        with pytest.raises(ValueError):
            run_shuffle(
                plan, src_buffers, length, parallel=True, window_bytes=8
            )


class TestResultAccounting:
    def test_retries_counted_on_the_result(self):
        # Drop scoped to the write op at a rate low enough to always
        # recover within the default budget but high enough to fire.
        plan = FaultPlan(
            seed=1, rules=(FaultRule(kind="drop", rate=0.4, op="write"),)
        )
        fs = _small_fs(plan, replication=2)
        data = {n: np.full(16, n + 1, np.uint8) for n in range(4)}
        res = fs.write("f", [(n, 0, data[n]) for n in range(4)], to_disk=True)
        assert res.retries > 0
        got, _ = fs.read_with_result(
            "f", [(n, 0, 16) for n in range(4)], from_disk=True
        )
        for n in range(4):
            np.testing.assert_array_equal(got[n], data[n])

    def test_fault_free_replication_is_not_degraded(self):
        fs = _small_fs(None, replication=2)
        res = fs.write("f", [(0, 0, np.ones(16, np.uint8))], to_disk=True)
        assert not res.degraded
        assert res.retries == 0
