"""RetryPolicy: backoff growth, capping, deterministic jitter."""

import pytest

from repro.faults import RetryPolicy


class TestValidation:
    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=-1.0)

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.01)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        p = RetryPolicy(
            base_backoff_s=0.001,
            backoff_factor=2.0,
            max_backoff_s=1.0,
            jitter=0.0,
        )
        assert p.backoff_s(0) == pytest.approx(0.001)
        assert p.backoff_s(1) == pytest.approx(0.002)
        assert p.backoff_s(3) == pytest.approx(0.008)

    def test_cap_applies(self):
        p = RetryPolicy(
            base_backoff_s=0.001,
            backoff_factor=2.0,
            max_backoff_s=0.004,
            jitter=0.0,
        )
        assert p.backoff_s(10) == pytest.approx(0.004)

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(base_backoff_s=0.010, max_backoff_s=0.010, jitter=0.25)
        for round_index in range(6):
            a = p.backoff_s(round_index, seed=42, token=("w", 3))
            b = p.backoff_s(round_index, seed=42, token=("w", 3))
            assert a == b  # same seed+token -> same wait
            assert 0.0075 <= a <= 0.0125  # within +/- jitter of the base

    def test_jitter_varies_with_seed(self):
        p = RetryPolicy(jitter=0.25)
        waits = {p.backoff_s(0, seed=s, token=("w",)) for s in range(8)}
        assert len(waits) > 1
