"""Replica placement: rotation, distinctness, validation."""

import pytest

from repro import round_robin
from repro.faults import ReplicatedPartition, replica_nodes


class TestReplicaNodes:
    def test_primary_matches_round_robin_map(self):
        for subfile in range(8):
            assert replica_nodes(subfile, 1, 4) == (subfile % 4,)

    def test_rotation_spreads_replicas(self):
        assert replica_nodes(0, 3, 4) == (0, 1, 2)
        assert replica_nodes(3, 3, 4) == (3, 0, 1)
        assert replica_nodes(5, 2, 4) == (1, 2)

    def test_replicas_land_on_distinct_nodes(self):
        for subfile in range(16):
            for k in range(1, 5):
                nodes = replica_nodes(subfile, k, 4)
                assert len(set(nodes)) == k

    def test_k_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            replica_nodes(0, 0, 4)
        with pytest.raises(ValueError):
            replica_nodes(0, 5, 4)

    def test_node_loss_degrades_every_subfile_by_at_most_one(self):
        # Rotation guarantees a crashed node holds at most one replica
        # of any subfile, so k=2 always leaves a live copy.
        down = 2
        for subfile in range(16):
            nodes = replica_nodes(subfile, 2, 4)
            assert sum(1 for n in nodes if n == down) <= 1


class TestReplicatedPartition:
    def test_wraps_base_partition(self):
        rp = ReplicatedPartition(round_robin(4, 8), k=2)
        assert rp.num_subfiles == 4
        assert rp.nodes_for(1, 4) == (1, 2)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedPartition(round_robin(4, 8), k=0)

    def test_unknown_subfile_rejected(self):
        rp = ReplicatedPartition(round_robin(4, 8), k=2)
        with pytest.raises(ValueError):
            rp.nodes_for(4, 4)
