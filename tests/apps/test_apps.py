"""Tests for the applications layer: checkpoint, transpose, halo."""

import numpy as np
import pytest

from repro import matrix_partition, round_robin, row_blocks
from repro.apps import CheckpointStore, HaloExchange, reshard, transpose_out_of_core
from repro.clusterfile import Clusterfile
from repro.redistribution import collect, distribute
from repro.simulation import ClusterConfig


class TestReshard:
    def test_process_count_change(self):
        """Checkpoint written by 4 ranks, restarted on 2 — and back."""
        n = 32
        data = np.random.default_rng(0).integers(0, 256, n * n, dtype=np.uint8)
        p4 = matrix_partition("r", n, n, 4)
        p2 = matrix_partition("r", n, n, 2)
        pieces4 = distribute(data, p4)
        pieces2 = reshard(pieces4, p4, p2)
        assert len(pieces2) == 2
        np.testing.assert_array_equal(collect(pieces2, p2, data.size), data)
        back = reshard(pieces2, p2, p4)
        for a, b in zip(back, pieces4):
            np.testing.assert_array_equal(a, b)

    def test_decomposition_change(self):
        n = 32
        data = np.random.default_rng(1).integers(0, 256, n * n, dtype=np.uint8)
        rows = matrix_partition("r", n, n, 4)
        blocks = matrix_partition("b", n, n, 4)
        out = reshard(distribute(data, rows), rows, blocks)
        np.testing.assert_array_equal(collect(out, blocks, data.size), data)


class TestCheckpointStore:
    def test_save_load_same_layout(self):
        n = 32
        store = CheckpointStore()
        data = np.random.default_rng(2).integers(0, 256, n * n, dtype=np.uint8)
        part = matrix_partition("r", n, n, 4)
        store.save("ck", distribute(data, part), part, (n, n))
        pieces = store.load("ck")
        np.testing.assert_array_equal(collect(pieces, part, data.size), data)

    def test_restart_on_different_count(self):
        n = 32
        store = CheckpointStore()
        data = np.random.default_rng(3).integers(0, 256, n * n, dtype=np.uint8)
        writer = matrix_partition("r", n, n, 4)
        store.save("ck", distribute(data, writer), writer, (n, n))
        reader = matrix_partition("b", n, n, 4)
        pieces = store.load("ck", reader)
        np.testing.assert_array_equal(collect(pieces, reader, data.size), data)

    def test_load_array_typed(self):
        store = CheckpointStore()
        arr = np.arange(64, dtype=np.float64).reshape(8, 8)
        part = row_blocks(8, 8 * 8, 4)  # bytes: 8 rows x 64 bytes
        store.save("f", distribute(arr.tobytes(), part), part, (8, 8), np.float64)
        out = store.load_array("f")
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == np.float64

    def test_overwrite_and_listing(self):
        store = CheckpointStore()
        part = round_robin(4, 4)
        data = np.arange(16, dtype=np.uint8)
        store.save("a", distribute(data, part), part, (16,))
        store.save("a", distribute(data[::-1].copy(), part), part, (16,))
        np.testing.assert_array_equal(store.load_array("a"), data[::-1])
        assert store.checkpoints() == ["a"]

    def test_misaligned_rejected(self):
        store = CheckpointStore()
        part = round_robin(4, 4)
        with pytest.raises(ValueError):
            store.save("x", [], part, (7,))


class TestTranspose:
    @pytest.mark.parametrize("itemsize", [1, 4])
    def test_transpose_matches_numpy(self, itemsize):
        rows, cols = 16, 32
        rng = np.random.default_rng(5)
        mat = rng.integers(0, 256, (rows, cols, itemsize), dtype=np.uint8)
        flat = mat.reshape(-1)

        fs = Clusterfile(ClusterConfig())
        src_phys = row_blocks(rows, cols, 4, itemsize)
        fs.create("src", src_phys)
        for c in range(4):
            fs.set_view("src", c, src_phys, element=c)
        per = flat.size // 4
        fs.write("src", [(c, 0, flat[c * per : (c + 1) * per]) for c in range(4)])

        transpose_out_of_core(fs, "src", "dst", rows, cols, itemsize)
        got = fs.linear_contents("dst", flat.size)
        want = np.ascontiguousarray(mat.transpose(1, 0, 2)).reshape(-1)
        np.testing.assert_array_equal(got, want)

    def test_double_transpose_is_identity(self):
        n = 16
        mat = np.random.default_rng(6).integers(0, 256, (n, n), dtype=np.uint8)
        fs = Clusterfile(ClusterConfig())
        phys = row_blocks(n, n, 4)
        fs.create("src", phys)
        for c in range(4):
            fs.set_view("src", c, phys, element=c)
        per = n * n // 4
        flat = mat.reshape(-1)
        fs.write("src", [(c, 0, flat[c * per : (c + 1) * per]) for c in range(4)])
        transpose_out_of_core(fs, "src", "t1", n, n)
        transpose_out_of_core(fs, "t1", "t2", n, n)
        np.testing.assert_array_equal(fs.linear_contents("t2", n * n), flat)

    def test_indivisible_rejected(self):
        fs = Clusterfile(ClusterConfig())
        with pytest.raises(ValueError):
            transpose_out_of_core(fs, "a", "b", 10, 10, nprocs=4)


class TestHaloExchange:
    def test_block_1d_exchange(self):
        n, nprocs, halo = 32, 4, 2
        ex = HaloExchange.block_1d(n, 1, nprocs, halo)
        data = np.arange(n, dtype=np.uint8)
        buffers = [ex.scatter_owned(p, data) for p in range(nprocs)]
        msgs, nbytes = ex.exchange(buffers)
        # Interior ranks exchange both sides, edges one: 2*(2*(n-2)/...)
        assert msgs == 2 * (nprocs - 1)
        assert nbytes == halo * 2 * (nprocs - 1)
        per = n // nprocs
        for p in range(nprocs):
            g_lo = max(0, p * per - halo)
            g_hi = min(n - 1, (p + 1) * per - 1 + halo)
            np.testing.assert_array_equal(buffers[p], data[g_lo : g_hi + 1])

    def test_multibyte_elements(self):
        n, nprocs, halo = 16, 2, 1
        ex = HaloExchange.block_1d(n, 4, nprocs, halo)
        data = np.arange(n * 4, dtype=np.uint8)
        buffers = [ex.scatter_owned(p, data) for p in range(nprocs)]
        ex.exchange(buffers)
        np.testing.assert_array_equal(buffers[0], data[: (n // 2 + 1) * 4])

    def test_schedule_reuse_over_iterations(self):
        n, nprocs, halo = 24, 3, 1
        ex = HaloExchange.block_1d(n, 1, nprocs, halo)
        for it in range(3):
            data = (np.arange(n, dtype=np.uint8) + it) % 251
            buffers = [ex.scatter_owned(p, data) for p in range(nprocs)]
            ex.exchange(buffers)
            per = n // nprocs
            for p in range(nprocs):
                g_lo = max(0, p * per - halo)
                g_hi = min(n - 1, (p + 1) * per - 1 + halo)
                np.testing.assert_array_equal(buffers[p], data[g_lo : g_hi + 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            HaloExchange.block_1d(10, 1, 4, 1)  # indivisible
        with pytest.raises(ValueError):
            HaloExchange.block_1d(8, 1, 4, 3)  # halo wider than block
        ex = HaloExchange.block_1d(8, 1, 2, 1)
        with pytest.raises(ValueError):
            ex.exchange([np.zeros(5, np.uint8)])  # wrong buffer count


class TestHalo2D:
    def _verify(self, rows, cols, grid, halo, itemsize=1):
        ex = HaloExchange.block_2d(rows, cols, grid, halo, itemsize)
        data = np.arange(rows * cols * itemsize, dtype=np.uint8)
        buffers = [ex.scatter_owned(p, data) for p in range(grid[0] * grid[1])]
        ex.exchange(buffers)
        mat = data.reshape(rows, cols, itemsize)
        br, bc = rows // grid[0], cols // grid[1]
        for p in range(grid[0] * grid[1]):
            r, c = divmod(p, grid[1])
            g_r0 = max(0, r * br - halo)
            g_r1 = min(rows, (r + 1) * br + halo)
            g_c0 = max(0, c * bc - halo)
            g_c1 = min(cols, (c + 1) * bc + halo)
            want = np.ascontiguousarray(
                mat[g_r0:g_r1, g_c0:g_c1]
            ).reshape(-1)
            np.testing.assert_array_equal(buffers[p], want)

    def test_2x2_grid(self):
        self._verify(8, 8, (2, 2), 1)

    def test_rectangular_grid_and_blocks(self):
        self._verify(12, 8, (3, 2), 2)

    def test_corner_ghosts_travel(self):
        # With a 2x2 grid and halo 1, rank 0's ghost includes the corner
        # element owned by the diagonal neighbour - the exchange must
        # carry it (9-point stencil support).
        ex = HaloExchange.block_2d(4, 4, (2, 2), 1)
        pairs = {(m.src, m.dst) for m in ex.messages}
        assert (3, 0) in pairs  # diagonal neighbour sends to rank 0

    def test_multibyte_elements(self):
        self._verify(8, 8, (2, 2), 1, itemsize=4)

    def test_validation(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            HaloExchange.block_2d(9, 8, (2, 2), 1)
        with _pytest.raises(ValueError):
            HaloExchange.block_2d(8, 8, (2, 2), 4)


class TestOutOfCoreMatmul:
    def _setup(self, n, layout="b"):
        from repro.apps.matmul import load_matrix, matmul_out_of_core, store_matrix

        rng = np.random.default_rng(21)
        A = rng.normal(size=(n, n))
        B = rng.normal(size=(n, n))
        fs = Clusterfile(ClusterConfig())
        phys = matrix_partition(layout, n, n * 8, 4)
        store_matrix(fs, "A", A, phys)
        store_matrix(fs, "B", B, matrix_partition(layout, n, n * 8, 4))
        return fs, A, B, load_matrix, matmul_out_of_core

    def test_matches_numpy(self):
        n, tile = 16, 4
        fs, A, B, load_matrix, matmul = self._setup(n)
        reads = matmul(fs, "A", "B", "C", n, tile)
        C = load_matrix(fs, "C", n)
        np.testing.assert_allclose(C, A @ B, rtol=1e-12)
        assert reads == 2 * (n // tile) ** 3

    def test_single_tile_degenerate(self):
        n = 8
        fs, A, B, load_matrix, matmul = self._setup(n, layout="r")
        matmul(fs, "A", "B", "C", n, tile=n)
        np.testing.assert_allclose(load_matrix(fs, "C", n), A @ B, rtol=1e-12)

    def test_tile_must_divide(self):
        from repro.apps.matmul import matmul_out_of_core

        fs = Clusterfile(ClusterConfig())
        with pytest.raises(ValueError):
            matmul_out_of_core(fs, "A", "B", "C", 10, 3)

    def test_custom_c_layout(self):
        n, tile = 8, 4
        fs, A, B, load_matrix, matmul = self._setup(n)
        matmul(fs, "A", "B", "C", n, tile,
               c_physical=matrix_partition("c", n, n * 8, 4))
        np.testing.assert_allclose(load_matrix(fs, "C", n), A @ B, rtol=1e-12)
