"""Multidimensional distributions checked against a NumPy ownership oracle.

The oracle distributes a ``shape`` array over a processor grid with plain
NumPy index arithmetic and compares byte sets with the nested-FALLS
construction.
"""

import numpy as np
import pytest

from repro.core.indexset import falls_set_indices, pattern_element_indices
from repro.distributions.hpf import Block, BlockCyclic, Cyclic, Replicated
from repro.distributions.multidim import (
    column_blocks,
    matrix_partition,
    multidim_element,
    multidim_partition,
    row_blocks,
    square_blocks,
)


def oracle_owner_bytes(shape, itemsize, dists, grid, coords):
    """Byte offsets owned by a grid cell, computed by brute force."""

    def dim_indices(dist, n, nprocs, p):
        idx = np.arange(n)
        if isinstance(dist, Replicated):
            return idx
        if isinstance(dist, Block):
            chunk = -(-n // nprocs)
            return idx[(idx // chunk) == p]
        if isinstance(dist, Cyclic):
            return idx[idx % nprocs == p]
        if isinstance(dist, BlockCyclic):
            return idx[(idx // dist.k) % nprocs == p]
        raise TypeError(dist)

    per_dim = [
        dim_indices(dists[d], shape[d], grid[d], coords[d])
        for d in range(len(shape))
    ]
    mesh = np.meshgrid(*per_dim, indexing="ij")
    flat = np.ravel_multi_index([m.reshape(-1) for m in mesh], shape)
    bytes_ = (flat[:, None] * itemsize + np.arange(itemsize)[None, :]).reshape(-1)
    return np.sort(bytes_)


CASES = [
    ((8, 8), 1, (Block(), Replicated()), (4, 1)),
    ((8, 8), 1, (Replicated(), Block()), (1, 4)),
    ((8, 8), 1, (Block(), Block()), (2, 2)),
    ((8, 8), 4, (Block(), Block()), (2, 2)),
    ((6, 10), 2, (Cyclic(), Block()), (3, 2)),
    ((12, 8), 1, (BlockCyclic(2), BlockCyclic(2)), (2, 2)),
    ((4, 6, 8), 1, (Block(), Replicated(), Block()), (2, 1, 2)),
    ((4, 6, 8), 8, (Cyclic(), Block(), Replicated()), (2, 3, 1)),
]


class TestMultidimElement:
    @pytest.mark.parametrize("shape,itemsize,dists,grid", CASES)
    def test_matches_oracle(self, shape, itemsize, dists, grid):
        import itertools

        for coords in itertools.product(*(range(g) for g in grid)):
            element = multidim_element(shape, itemsize, dists, grid, coords)
            got = falls_set_indices(element.falls)
            want = oracle_owner_bytes(shape, itemsize, dists, grid, coords)
            np.testing.assert_array_equal(got, want)


class TestMultidimPartition:
    @pytest.mark.parametrize("shape,itemsize,dists,grid", CASES)
    def test_partition_valid_and_sized(self, shape, itemsize, dists, grid):
        p = multidim_partition(shape, itemsize, dists, grid)
        assert p.size == int(np.prod(shape)) * itemsize

    def test_replicated_needs_unit_grid(self):
        with pytest.raises(ValueError):
            multidim_partition((4, 4), 1, (Replicated(), Block()), (2, 2))

    def test_empty_cell_rejected(self):
        # 2 rows over 4 row-procs: cells 2,3 own nothing.
        with pytest.raises(ValueError):
            multidim_partition((2, 8), 1, (Block(), Replicated()), (4, 1))


class TestPaperLayouts:
    def test_row_blocks_structure(self):
        p = row_blocks(8, 8, 4)
        # Each element: 2 contiguous rows = 16 contiguous bytes.
        assert p.element_size(0) == 16
        for i in range(4):
            e = p.elements[i]
            assert e.is_contiguous()

    def test_column_blocks_structure(self):
        p = column_blocks(8, 8, 4)
        # Each element: 2 columns = 8 segments of 2 bytes, stride 8.
        e = p.elements[1]
        segs = list(e.leaf_segments())
        assert len(segs) == 8
        assert segs[0].start == 2 and segs[0].length == 2
        assert segs[1].start == 10

    def test_square_blocks_structure(self):
        p = square_blocks(8, 8, 4)
        # Element (0,1): rows 0..3, cols 4..7 -> 4 segments of 4 bytes.
        segs = list(p.elements[1].leaf_segments())
        assert len(segs) == 4
        assert segs[0].start == 4 and segs[0].length == 4

    def test_matrix_partition_dispatch(self):
        for layout in ("r", "c", "b"):
            p = matrix_partition(layout, 16, 16, 4)
            assert p.size == 256
        with pytest.raises(ValueError):
            matrix_partition("x", 16, 16, 4)

    def test_layouts_cover_file(self):
        # Tiling over a 2-matrix file: pattern applies twice.
        p = column_blocks(4, 8, 4)
        for e in range(4):
            idx = pattern_element_indices(p.elements[e], p.size, 0, 64)
            assert idx.size == 16

    def test_row_equals_logical_row(self):
        # The evaluation's logical partition is always row blocks over 4
        # processors; physical 'r' must match element for element.
        phys = matrix_partition("r", 16, 16, 4)
        logical = row_blocks(16, 16, 4)
        assert phys.elements == logical.elements

    def test_square_blocks_nonsquare_proc_count(self):
        p = square_blocks(8, 8, 2)  # falls back to 1x2 grid
        assert p.num_elements == 2
        assert p.element_size(0) == 32
