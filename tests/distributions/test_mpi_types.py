"""Unit tests for MPI derived datatypes as nested FALLS."""

import numpy as np
import pytest

from repro.core import PeriodicFallsSet
from repro.core.indexset import falls_set_indices
from repro.distributions.mpi_types import (
    TypeMap,
    contiguous,
    indexed,
    primitive,
    simplify,
    struct_like,
    subarray,
    vector,
)
from repro.redistribution import gather, scatter


def significant(t: TypeMap) -> set:
    return set(falls_set_indices(t.falls.falls).tolist())


class TestPrimitive:
    def test_basic(self):
        d = primitive(8)
        assert d.size == 8
        assert d.extent == 8
        assert significant(d) == set(range(8))

    def test_resized(self):
        d = primitive(4).resized(16)
        assert d.size == 4
        assert d.extent == 16

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            primitive(4).resized(0)
        with pytest.raises(ValueError):
            TypeMap(primitive(8).falls, 4)  # map exceeds extent


class TestContiguous:
    def test_bytes(self):
        t = contiguous(3, primitive(4))
        assert t.size == 12
        assert t.extent == 12
        assert significant(t) == set(range(12))

    def test_of_sparse_base(self):
        base = primitive(2).resized(4)  # 2 significant bytes per 4
        t = contiguous(3, base)
        assert t.extent == 12
        assert significant(t) == {0, 1, 4, 5, 8, 9}

    def test_count_validation(self):
        with pytest.raises(ValueError):
            contiguous(0, primitive(4))


class TestVector:
    def test_column_of_matrix(self):
        # 4x4 matrix of 1-byte elements; one column.
        t = vector(count=4, blocklength=1, stride=4, base=primitive(1))
        assert significant(t) == {0, 4, 8, 12}
        assert t.size == 4
        assert t.extent == 13  # MPI: last block end

    def test_blocklength(self):
        t = vector(count=2, blocklength=2, stride=3, base=primitive(2))
        # blocks of 2 elements (4 bytes) every 3 elements (6 bytes)
        assert significant(t) == {0, 1, 2, 3, 6, 7, 8, 9}

    def test_validation(self):
        with pytest.raises(ValueError):
            vector(2, 0, 4, primitive(1))
        with pytest.raises(ValueError):
            vector(2, 5, 4, primitive(1))


class TestIndexed:
    def test_triangular(self):
        t = indexed([3, 2, 1], [0, 4, 7], primitive(1))
        assert significant(t) == {0, 1, 2, 4, 5, 7}
        assert t.extent == 8

    def test_with_wide_base(self):
        t = indexed([1, 1], [0, 2], primitive(4))
        assert significant(t) == {0, 1, 2, 3, 8, 9, 10, 11}

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            indexed([2, 2], [0, 1], primitive(1))
        with pytest.raises(ValueError):
            indexed([2], [0, 1], primitive(1))
        with pytest.raises(ValueError):
            indexed([], [], primitive(1))


class TestSubarray:
    def test_2d_region(self):
        t = subarray((4, 4), (2, 2), (1, 1), primitive(1))
        arr = np.arange(16).reshape(4, 4)
        want = set(arr[1:3, 1:3].reshape(-1).tolist())
        assert significant(t) == want
        assert t.extent == 16

    def test_3d_region_oracle(self):
        shape, sub, start = (3, 4, 5), (2, 2, 3), (1, 1, 1)
        t = subarray(shape, sub, start, primitive(1))
        arr = np.arange(np.prod(shape)).reshape(shape)
        want = set(arr[1:3, 1:3, 1:4].reshape(-1).tolist())
        assert significant(t) == want

    def test_with_multibyte_base(self):
        t = subarray((2, 3), (1, 2), (1, 0), primitive(4))
        arr = np.arange(24).reshape(2, 3, 4)
        want = set(arr[1, 0:2].reshape(-1).tolist())
        assert significant(t) == want

    def test_validation(self):
        with pytest.raises(ValueError):
            subarray((4,), (5,), (0,), primitive(1))
        with pytest.raises(ValueError):
            subarray((4,), (2,), (3,), primitive(1))
        with pytest.raises(ValueError):
            subarray((4, 4), (2,), (0,), primitive(1))


class TestStruct:
    def test_fields(self):
        t = struct_like([(0, primitive(2)), (4, primitive(4))])
        assert significant(t) == {0, 1, 4, 5, 6, 7}
        assert t.extent == 8

    def test_nested_composition(self):
        inner = vector(2, 1, 2, primitive(1))  # bytes {0, 2}
        t = struct_like([(0, inner), (4, primitive(1))])
        assert significant(t) == {0, 2, 4}

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            struct_like([(0, primitive(4)), (2, primitive(2))])
        with pytest.raises(ValueError):
            struct_like([])


class TestSimplify:
    def test_coalesces_adjacent(self):
        t = struct_like([(0, primitive(2)), (2, primitive(2))])
        s = simplify(t)
        assert s.size == t.size
        assert significant(s) == significant(t)
        assert len(s.falls) == 1
        assert s.falls[0].is_contiguous


class TestPackUnpack:
    """The paper's claim: gather/scatter implement MPI pack/unpack."""

    def test_vector_pack_roundtrip(self):
        t = vector(count=8, blocklength=2, stride=4, base=primitive(1))
        pfs = PeriodicFallsSet(t.falls, 0, t.extent)
        buf = np.arange(t.extent, dtype=np.uint8)
        packed = np.empty(t.size, dtype=np.uint8)
        gather(packed, buf, 0, t.extent - 1, pfs)
        out = np.zeros(t.extent, dtype=np.uint8)
        scatter(out, packed, 0, t.extent - 1, pfs)
        idx = sorted(significant(t))
        np.testing.assert_array_equal(out[idx], buf[idx])
        mask = np.ones(t.extent, dtype=bool)
        mask[idx] = False
        assert not out[mask].any()

    def test_repeated_type_pack(self):
        """Packing `count` instances uses the extent as the period."""
        t = indexed([1, 2], [0, 2], primitive(1))  # bytes {0,2,3} of 4
        count = 5
        pfs = PeriodicFallsSet(t.falls, 0, t.extent)
        buf = np.arange(t.extent * count, dtype=np.uint8)
        packed = np.empty(t.size * count, dtype=np.uint8)
        gather(packed, buf, 0, t.extent * count - 1, pfs)
        want = np.concatenate(
            [buf[k * 4 + np.array([0, 2, 3])] for k in range(count)]
        )
        np.testing.assert_array_equal(packed, want)
