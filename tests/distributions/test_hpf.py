"""Unit tests for 1-D HPF-style distributions."""

import pytest

from repro.distributions.hpf import (
    Block,
    BlockCyclic,
    Cyclic,
    Replicated,
    falls_1d,
    owned_count,
    validate_partition_cover,
)


def owned(dist, n, nprocs, p):
    out = set()
    for f in falls_1d(dist, n, nprocs, p):
        for seg in f.leaf_segments():
            out.update(range(seg.start, seg.stop + 1))
    return out


class TestBlock:
    def test_even_split(self):
        assert owned(Block(), 8, 4, 0) == {0, 1}
        assert owned(Block(), 8, 4, 3) == {6, 7}

    def test_ragged_split(self):
        # ceil(10/4)=3: 3,3,3,1
        assert owned(Block(), 10, 4, 0) == {0, 1, 2}
        assert owned(Block(), 10, 4, 3) == {9}

    def test_empty_processor(self):
        # ceil(3/4)=1: procs 0..2 get one element, proc 3 nothing.
        assert owned(Block(), 3, 4, 3) == set()

    def test_cover(self):
        for n, p in [(8, 4), (10, 4), (3, 4), (7, 2)]:
            validate_partition_cover(Block(), n, p)


class TestCyclic:
    def test_round_robin(self):
        assert owned(Cyclic(), 10, 4, 0) == {0, 4, 8}
        assert owned(Cyclic(), 10, 4, 1) == {1, 5, 9}
        assert owned(Cyclic(), 10, 4, 2) == {2, 6}

    def test_cover(self):
        for n, p in [(10, 4), (4, 4), (9, 2)]:
            validate_partition_cover(Cyclic(), n, p)


class TestBlockCyclic:
    def test_blocks_dealt(self):
        assert owned(BlockCyclic(2), 12, 3, 0) == {0, 1, 6, 7}
        assert owned(BlockCyclic(2), 12, 3, 2) == {4, 5, 10, 11}

    def test_ragged_tail(self):
        # n=10, k=3, p=2: proc 0 gets [0..2] and the ragged [6..8]... no:
        # stride 6, proc0 blocks start 0,6 -> {0,1,2,6,7,8}; proc1 start 3,9
        # -> {3,4,5,9}.
        assert owned(BlockCyclic(3), 10, 2, 0) == {0, 1, 2, 6, 7, 8}
        assert owned(BlockCyclic(3), 10, 2, 1) == {3, 4, 5, 9}

    def test_cover(self):
        for n, p, k in [(10, 2, 3), (16, 4, 2), (7, 3, 2), (5, 4, 3)]:
            validate_partition_cover(BlockCyclic(k), n, p)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            BlockCyclic(0)

    def test_processor_beyond_data(self):
        assert owned(BlockCyclic(4), 6, 3, 2) == set()


class TestReplicated:
    def test_whole_dimension(self):
        assert owned(Replicated(), 5, 1, 0) == {0, 1, 2, 3, 4}

    def test_not_a_partition(self):
        with pytest.raises(ValueError):
            validate_partition_cover(Replicated(), 5, 1)


class TestArgumentValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            falls_1d(Block(), 0, 4, 0)
        with pytest.raises(ValueError):
            falls_1d(Block(), 4, 0, 0)
        with pytest.raises(ValueError):
            falls_1d(Block(), 4, 2, 2)

    def test_owned_count(self):
        assert owned_count(Block(), 10, 4, 0) == 3
        assert owned_count(Block(), 10, 4, 3) == 1
        assert owned_count(Cyclic(), 10, 4, 2) == 2
