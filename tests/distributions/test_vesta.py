"""Tests for the Vesta baseline and the superset claim (paper §2)."""

import numpy as np
import pytest

from repro import Falls, FallsSet, Partition, matrix_partition
from repro.core.indexset import falls_set_indices
from repro.distributions.vesta import (
    VestaScheme,
    vesta_expressible,
    vesta_partition,
)


class TestVestaScheme:
    def test_validation(self):
        with pytest.raises(ValueError):
            VestaScheme(bsu=0, hbs=4, vn=1, vbs=1, hn=4, group_hbs=1)
        with pytest.raises(ValueError):
            VestaScheme(bsu=1, hbs=4, vn=1, vbs=1, hn=3, group_hbs=1)

    def test_geometry(self):
        s = VestaScheme(bsu=2, hbs=8, vn=2, vbs=4, hn=2, group_hbs=4)
        assert s.num_elements == 4
        assert s.pattern_rows == 8
        assert s.pattern_bytes == 8 * 8 * 2


class TestVestaPartition:
    def test_column_groups(self):
        # 1 vertical group x 4 horizontal groups == column blocks.
        s = VestaScheme(bsu=1, hbs=16, vn=1, vbs=16, hn=4, group_hbs=4)
        p = vesta_partition(s)
        q = matrix_partition("c", 16, 16, 4)
        assert [falls_set_indices(e.falls).tolist() for e in p.elements] == [
            falls_set_indices(e.falls).tolist() for e in q.elements
        ]

    def test_row_groups(self):
        s = VestaScheme(bsu=1, hbs=16, vn=4, vbs=4, hn=1, group_hbs=16)
        p = vesta_partition(s)
        q = matrix_partition("r", 16, 16, 4)
        for a, b in zip(p.elements, q.elements):
            np.testing.assert_array_equal(
                falls_set_indices(a.falls), falls_set_indices(b.falls)
            )

    def test_grid_groups(self):
        s = VestaScheme(bsu=1, hbs=16, vn=2, vbs=8, hn=2, group_hbs=8)
        p = vesta_partition(s)
        q = matrix_partition("b", 16, 16, 4)
        for a, b in zip(p.elements, q.elements):
            np.testing.assert_array_equal(
                falls_set_indices(a.falls), falls_set_indices(b.falls)
            )

    def test_bsu_scaling(self):
        s = VestaScheme(bsu=4, hbs=4, vn=1, vbs=2, hn=4, group_hbs=1)
        p = vesta_partition(s)
        assert p.size == 2 * 4 * 4
        assert p.element_size(0) == 8


class TestSupersetClaim:
    """Every Vesta scheme is a FALLS partition (constructive above);
    the reverse direction fails — checked here."""

    @pytest.mark.parametrize(
        "scheme",
        [
            VestaScheme(1, 16, 1, 16, 4, 4),
            VestaScheme(1, 16, 4, 4, 1, 16),
            VestaScheme(2, 8, 2, 4, 2, 4),
            VestaScheme(4, 4, 2, 2, 2, 2),
        ],
    )
    def test_roundtrip_recognition(self, scheme):
        p = vesta_partition(scheme)
        back = vesta_expressible(p)
        assert back is not None
        np.testing.assert_array_equal(
            falls_set_indices(vesta_partition(back).elements[0].falls),
            falls_set_indices(p.elements[0].falls),
        )
        assert vesta_partition(back).elements == p.elements

    def test_cyclic_stripe_not_expressible(self):
        # Fine-grained round-robin striping is a one-level FALLS pattern
        # whose elements are NOT rectangles of a common 2-D cell matrix
        # with congruent origins... the 1-row degenerate case IS
        # expressible, so use unequal shapes instead.
        p = Partition([FallsSet([Falls(0, 2, 8, 2)]),
                       FallsSet([Falls(3, 7, 8, 1), Falls(11, 15, 8, 1)])])
        assert vesta_expressible(p) is None

    def test_nested_pattern_not_expressible(self):
        inner = Falls(0, 0, 2, 2)
        p = Partition(
            [
                FallsSet([Falls(0, 3, 8, 2, (inner,))]),
                FallsSet([Falls(0, 3, 8, 2, (Falls(1, 1, 2, 2),))]),
                FallsSet([Falls(4, 7, 8, 2)]),
            ]
        )
        assert vesta_expressible(p) is None

    def test_unequal_elements_not_expressible(self):
        p = Partition([Falls(0, 3, 6, 1), Falls(4, 5, 6, 1)])
        assert vesta_expressible(p) is None

    def test_three_dim_block_not_expressible(self):
        from repro.distributions import Block, multidim_partition

        p = multidim_partition((4, 4, 4), 1, (Block(), Block(), Block()),
                               (2, 2, 2))
        assert vesta_expressible(p) is None
