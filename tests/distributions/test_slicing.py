"""Slice-to-FALLS tests against the NumPy indexing oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexset import falls_set_indices
from repro.distributions.slicing import normalize_index, slice_falls


def oracle_bytes(shape, itemsize, index):
    """Byte offsets numpy selects for arr[index] of a C-ordered array."""
    n = int(np.prod(shape))
    offsets = np.arange(n).reshape(shape)
    sel = offsets[index]
    flat = np.asarray(sel).reshape(-1)
    return np.sort(
        (flat[:, None] * itemsize + np.arange(itemsize)[None, :]).reshape(-1)
    )


CASES = [
    ((8,), 1, slice(2, 6)),
    ((8,), 1, slice(0, 8, 3)),
    ((8,), 4, slice(1, 7, 2)),
    ((8,), 1, 5),
    ((6, 8), 1, (slice(1, 4), slice(2, 7))),
    ((6, 8), 1, (slice(0, 6, 2), slice(0, 8, 3))),
    ((6, 8), 2, (3, slice(None))),
    ((6, 8), 1, (slice(None), 0)),
    ((4, 5, 6), 1, (slice(1, 3), slice(0, 5, 2), slice(2, 6))),
    ((4, 5, 6), 8, (2, slice(1, 4), slice(0, 6, 5))),
    ((6, 8), 1, slice(2, 5)),  # trailing dims implicit
]


class TestSliceFalls:
    @pytest.mark.parametrize("shape,itemsize,index", CASES)
    def test_matches_numpy(self, shape, itemsize, index):
        fs = slice_falls(shape, itemsize, index)
        got = falls_set_indices(fs.falls)
        np.testing.assert_array_equal(got, oracle_bytes(shape, itemsize, index))

    def test_negative_integer_index(self):
        fs = slice_falls((8,), 1, -2)
        assert falls_set_indices(fs.falls).tolist() == [6]

    def test_errors(self):
        with pytest.raises(IndexError):
            slice_falls((4,), 1, 7)
        with pytest.raises(IndexError):
            slice_falls((4,), 1, (slice(None), slice(None)))
        with pytest.raises(ValueError):
            slice_falls((8,), 1, slice(4, 2))
        with pytest.raises(ValueError):
            slice_falls((8,), 1, slice(None, None, -1))
        with pytest.raises(TypeError):
            slice_falls((8,), 1, "nope")

    @given(
        st.integers(2, 12),
        st.integers(2, 10),
        st.data(),
    )
    @settings(max_examples=150)
    def test_randomized_2d(self, rows, cols, data):
        def rand_slice(extent):
            start = data.draw(st.integers(0, extent - 1))
            stop = data.draw(st.integers(start + 1, extent))
            step = data.draw(st.integers(1, 3))
            return slice(start, stop, step)

        index = (rand_slice(rows), rand_slice(cols))
        itemsize = data.draw(st.sampled_from([1, 2, 4]))
        fs = slice_falls((rows, cols), itemsize, index)
        got = falls_set_indices(fs.falls)
        np.testing.assert_array_equal(
            got, oracle_bytes((rows, cols), itemsize, index)
        )


class TestNormalizeIndex:
    def test_fills_trailing(self):
        assert normalize_index(slice(1, 3), (4, 5)) == ((1, 3, 1), (0, 5, 1))

    def test_clamps_like_numpy(self):
        assert normalize_index(slice(0, 100), (8,)) == ((0, 8, 1),)

    def test_integer_resolution(self):
        assert normalize_index((-1, 2), (4, 5)) == ((3, 4, 1), (2, 3, 1))


class TestSliceViews:
    def test_slice_as_clusterfile_view(self):
        """A strided sub-matrix view built straight from a slice."""
        from repro import Partition
        from repro.clusterfile import Clusterfile
        from repro.core.algebra import complement
        from repro.distributions import matrix_partition
        from repro.simulation import ClusterConfig

        n = 16
        window = slice_falls((n, n), 1, (slice(2, 10, 2), slice(4, 12)))
        rest = complement(window, n * n)
        view_part = Partition([window, rest])
        fs = Clusterfile(ClusterConfig())
        fs.create("m", matrix_partition("b", n, n, 4))
        fs.set_view("m", 0, view_part, element=0)
        payload = np.arange(window.size(), dtype=np.uint8)
        fs.write("m", [(0, 0, payload)])
        mat = fs.linear_contents("m", n * n).reshape(n, n)
        want = payload.reshape(4, 8)
        np.testing.assert_array_equal(mat[2:10:2, 4:12], want)
