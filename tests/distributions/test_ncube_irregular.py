"""Unit tests for the nCube baseline and irregular distributions."""

import numpy as np
import pytest

from repro.core.indexset import pattern_element_indices
from repro.distributions.irregular import (
    partition_from_owner_array,
    partition_from_segments,
    round_robin,
)
from repro.distributions.ncube import (
    BitPermutation,
    NCubeError,
    disk_of_address,
    striped_bit_partition,
)


class TestBitPermutation:
    def test_identity(self):
        p = BitPermutation(tuple(range(8)))
        for a in (0, 1, 37, 255):
            assert p.apply(a) == a

    def test_swap_fields(self):
        # Swap the low 2 bits with the next 2 bits.
        p = BitPermutation((2, 3, 0, 1))
        assert p.apply(0b0001) == 0b0100
        assert p.apply(0b0110) == 0b1001

    def test_inverse_roundtrip(self):
        p = BitPermutation((3, 1, 0, 2))
        inv = p.inverse()
        for a in range(16):
            assert inv.apply(p.apply(a)) == a

    def test_compose(self):
        p = BitPermutation((1, 2, 3, 0))
        q = p.compose(p.inverse())
        assert q.perm == (0, 1, 2, 3)

    def test_apply_many_matches_scalar(self):
        p = BitPermutation((4, 0, 3, 1, 2))
        addrs = np.arange(32, dtype=np.int64)
        got = p.apply_many(addrs)
        want = np.array([p.apply(int(a)) for a in addrs])
        np.testing.assert_array_equal(got, want)

    def test_validation(self):
        with pytest.raises(NCubeError):
            BitPermutation((0, 0, 1))
        with pytest.raises(NCubeError):
            BitPermutation((1, 2))
        with pytest.raises(NCubeError):
            BitPermutation((0, 1)).apply(4)
        with pytest.raises(NCubeError):
            BitPermutation((0, 1)).compose(BitPermutation((0, 1, 2)))


class TestStripedBitPartition:
    def test_matches_bit_extraction(self):
        p = striped_bit_partition(256, 4, 16)
        for addr in range(256):
            owner, _ = p.element_owning(addr)
            assert owner == disk_of_address(addr, 4, 16)

    def test_power_of_two_required(self):
        with pytest.raises(NCubeError):
            striped_bit_partition(100, 4, 16)
        with pytest.raises(NCubeError):
            striped_bit_partition(256, 3, 16)
        with pytest.raises(NCubeError):
            striped_bit_partition(256, 4, 24)
        with pytest.raises(NCubeError):
            striped_bit_partition(16, 4, 16)  # one stripe exceeds file


class TestPartitionFromSegments:
    def test_basic(self):
        p = partition_from_segments([[(0, 3), (8, 11)], [(4, 7), (12, 15)]])
        assert p.num_elements == 2
        assert p.size == 16
        idx0 = pattern_element_indices(p.elements[0], p.size, 0, 16)
        assert idx0.tolist() == [0, 1, 2, 3, 8, 9, 10, 11]

    def test_gap_rejected(self):
        with pytest.raises(Exception):
            partition_from_segments([[(0, 3)], [(5, 7)]])

    def test_regularity_recovered(self):
        # Explicit segments that happen to be a regular stripe compress
        # back to a single FALLS per element.
        p = partition_from_segments(
            [[(0, 1), (4, 5), (8, 9)], [(2, 3), (6, 7), (10, 11)]]
        )
        assert len(p.elements[0]) == 1
        assert p.elements[0][0].n == 3


class TestPartitionFromOwnerArray:
    def test_matches_owner_map(self):
        rng = np.random.default_rng(5)
        owners = rng.integers(0, 3, 60)
        # Ensure every element owns something.
        owners[:3] = [0, 1, 2]
        p = partition_from_owner_array(owners, 3)
        for e in range(3):
            idx = pattern_element_indices(p.elements[e], p.size, 0, 60)
            np.testing.assert_array_equal(idx, np.flatnonzero(owners == e))

    def test_tiles_beyond_one_period(self):
        owners = np.array([0, 0, 1, 1, 0, 1])
        p = partition_from_owner_array(owners, 2)
        idx = pattern_element_indices(p.elements[0], p.size, 0, 12)
        np.testing.assert_array_equal(idx, [0, 1, 4, 6, 7, 10])

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_from_owner_array(np.array([0, 2]), 2)  # id out of range
        with pytest.raises(ValueError):
            partition_from_owner_array(np.array([0, 0]), 2)  # element 1 empty
        with pytest.raises(ValueError):
            partition_from_owner_array(np.empty(0, dtype=int))


class TestRoundRobin:
    def test_structure(self):
        p = round_robin(3, 4)
        assert p.size == 12
        assert p.element_owning(0) == (0, 0)
        assert p.element_owning(4) == (1, 0)
        assert p.element_owning(13) == (0, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            round_robin(0, 4)
        with pytest.raises(ValueError):
            round_robin(4, 0)
