"""One narrative integration test exercising the whole stack together.

A miniature application lifecycle: create a file on disk-backed
storage, write through MPI-IO subarray views, read it back through
HPF-style views, re-layout the file on the fly, run a collective write,
checkpoint the state and restart with a different decomposition —
verifying byte-exactness after every step.  If any two layers disagree
about the file model, this test is where it shows.
"""

import numpy as np
import pytest

from repro import (
    matching_degree,
    matrix_partition,
    row_blocks,
)
from repro.apps import CheckpointStore, reshard
from repro.clusterfile import Clusterfile
from repro.clusterfile.collective import two_phase_write
from repro.clusterfile.relayout import relayout
from repro.clusterfile.storage import FileStorage
from repro.core.serialize import partition_from_json, partition_to_json
from repro.distributions.mpi_types import primitive, subarray
from repro.mpiio import MPIFile
from repro.redistribution import distribute
from repro.simulation import ClusterConfig

N = 32  # matrix side (bytes); small enough to stay fast end to end
P = 4


def test_full_lifecycle(tmp_path):
    rng = np.random.default_rng(2026)
    field = rng.integers(0, 256, (N, N), dtype=np.uint8)
    flat = field.reshape(-1)

    # --- 1. create the file on real on-disk subfiles -------------------
    fs = Clusterfile(ClusterConfig(), storage=FileStorage(str(tmp_path)))
    fs.create("state", matrix_partition("b", N, N, P))

    # --- 2. write quadrants through MPI-IO subarray views ---------------
    mpif = MPIFile(fs, "state", P)
    for rank in range(P):
        r, c = divmod(rank, 2)
        ft = subarray((N, N), (N // 2, N // 2), (r * N // 2, c * N // 2),
                      primitive(1))
        mpif.set_view(rank, 0, primitive(1), ft)
        quad = field[r * N // 2 : (r + 1) * N // 2,
                     c * N // 2 : (c + 1) * N // 2]
        mpif.write_at(rank, 0, np.ascontiguousarray(quad).reshape(-1))
    np.testing.assert_array_equal(fs.linear_contents("state", flat.size), flat)

    # --- 3. read back through row-block views ---------------------------
    logical = row_blocks(N, N, P)
    for node in range(P):
        fs.set_view("state", node, logical)
    per = N * N // P
    bufs = fs.read("state", [(node, 0, per) for node in range(P)])
    for node, buf in enumerate(bufs):
        np.testing.assert_array_equal(buf, flat[node * per : (node + 1) * per])

    # --- 4. re-layout on the fly to match the row access pattern --------
    before = matching_degree(
        matrix_partition("b", N, N, P), logical
    ).degree()
    res = relayout(fs, "state", matrix_partition("r", N, N, P))
    after = matching_degree(
        matrix_partition("r", N, N, P), logical
    ).degree()
    assert res.bytes_moved == flat.size
    assert after == pytest.approx(1.0) and after > before
    np.testing.assert_array_equal(fs.linear_contents("state", flat.size), flat)

    # --- 5. collective write of an updated field ------------------------
    updated = (field.astype(np.int32) + 1).astype(np.uint8)
    cols = matrix_partition("c", N, N, P)
    for node in range(P):
        fs.set_view("state", node, cols)
    pieces = distribute(updated.reshape(-1), cols)
    col_accesses = [(node, 0, pieces[node]) for node in range(P)]
    two_phase_write(fs, "state", col_accesses, to_disk=True)
    np.testing.assert_array_equal(
        fs.linear_contents("state", flat.size), updated.reshape(-1)
    )

    # --- 6. checkpoint and restart on 2 ranks ---------------------------
    store = CheckpointStore()
    writer = matrix_partition("r", N, N, P)
    store.save(
        "step-1", distribute(updated.reshape(-1), writer), writer, (N, N)
    )
    # The layout metadata survives a JSON round trip (what a real
    # restart would parse from disk).
    meta_json = partition_to_json(writer)
    reader_writer = partition_from_json(meta_json)
    assert reader_writer == writer
    two_rank = matrix_partition("r", N, N, 2)
    restart_pieces = store.load("step-1", two_rank)
    assert len(restart_pieces) == 2
    merged = reshard(restart_pieces, two_rank, writer)
    want = distribute(updated.reshape(-1), writer)
    for a, b in zip(merged, want):
        np.testing.assert_array_equal(a, b)

    # --- 7. everything above also hit the real files on disk ------------
    # The re-layout (step 4) moved the contents into fresh on-disk
    # subfiles under the scratch name and deleted the originals.
    on_disk = sorted(p.name for p in tmp_path.iterdir())
    assert on_disk == [f"state.relayout.subfile{k}" for k in range(P)]
