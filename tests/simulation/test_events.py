"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.events import EventQueue, Resource


class TestEventQueue:
    def test_ordering(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda: log.append("c"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        end = q.run()
        assert log == ["a", "b", "c"]
        assert end == 3.0

    def test_tie_break_by_insertion(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(1.0, lambda: log.append(2))
        q.run()
        assert log == [1, 2]

    def test_nested_scheduling(self):
        q = EventQueue()
        log = []

        def first():
            log.append(("first", q.now))
            q.schedule(0.5, lambda: log.append(("second", q.now)))

        q.schedule(1.0, first)
        q.run()
        assert log == [("first", 1.0), ("second", 1.5)]

    def test_run_until(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(5.0, lambda: log.append(5))
        q.run(until=2.0)
        assert log == [1]
        assert q.now == 2.0
        assert q.pending == 1

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-1.0, lambda: None)

    def test_events_processed_counter(self):
        q = EventQueue()
        for _ in range(5):
            q.schedule(1.0, lambda: None)
        q.run()
        assert q.events_processed == 5


class TestResource:
    def test_fifo_serialisation(self):
        q = EventQueue()
        r = Resource("disk")
        slots = []
        r.acquire(q, 2.0, lambda s, e: slots.append((s, e)))
        r.acquire(q, 3.0, lambda s, e: slots.append((s, e)))
        q.run()
        assert slots == [(0.0, 2.0), (2.0, 5.0)]
        assert r.busy_time == 5.0
        assert r.requests == 2

    def test_acquire_after_idle(self):
        q = EventQueue()
        r = Resource()
        slots = []
        q.schedule(10.0, lambda: r.acquire(q, 1.0, lambda s, e: slots.append((s, e))))
        q.run()
        assert slots == [(10.0, 11.0)]

    def test_contention_from_concurrent_arrivals(self):
        q = EventQueue()
        r = Resource()
        ends = []
        q.schedule(1.0, lambda: r.acquire(q, 2.0, lambda s, e: ends.append(e)))
        q.schedule(1.0, lambda: r.acquire(q, 2.0, lambda s, e: ends.append(e)))
        q.run()
        assert ends == [3.0, 5.0]

    def test_negative_service_rejected(self):
        q = EventQueue()
        r = Resource()
        with pytest.raises(ValueError):
            r.acquire(q, -0.1, lambda s, e: None)
