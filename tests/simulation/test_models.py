"""Unit tests for the network, disk and memory cost models."""

import pytest

from repro.simulation.cache import BufferCache, MemoryModel
from repro.simulation.disk import DiskHead, DiskModel, write_time_for_segments
from repro.simulation.network import Network, NetworkModel


class TestNetworkModel:
    def test_alpha_beta(self):
        m = NetworkModel(latency_s=10e-6, bandwidth_Bps=100e6)
        assert m.transfer_time(0) == pytest.approx(10e-6)
        assert m.transfer_time(100_000_000) == pytest.approx(1.0 + 10e-6)

    def test_message_aggregation_wins(self):
        # One big message beats many small ones - the paper's motivation
        # for gathering before sending.
        m = NetworkModel()
        total = 1 << 20
        assert m.transfer_time(total, messages=1) < m.transfer_time(
            total, messages=64
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_Bps=0)
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)

    def test_stats_accounting(self):
        net = Network()
        net.send_time("a", "b", 100)
        net.send_time("a", "b", 50)
        net.send_time("b", "c", 10)
        assert net.stats.messages == 3
        assert net.stats.bytes == 160
        assert net.stats.by_pair[("a", "b")] == 150
        net.reset_stats()
        assert net.stats.messages == 0


class TestDiskModel:
    def test_sequential_cheaper_than_random(self):
        head = DiskHead()
        t_seq = head.access_time(0, 4096)
        t_seq2 = head.access_time(4096, 4096)  # head is already there
        head2 = DiskHead()
        head2.access_time(0, 4096)
        t_rand = head2.access_time(100 * 1024 * 1024, 4096)
        assert t_seq2 < t_rand
        # Both writes are sequential: the head starts at 0, and the second
        # write begins exactly where the first ended.
        assert head.sequential_requests == 2
        assert t_seq > 0

    def test_seek_scales_with_distance(self):
        m = DiskModel()
        assert m.seek_time(0) == 0.0
        assert m.seek_time(1024) <= m.seek_time(m.full_seek_span)
        assert m.seek_time(m.full_seek_span) == pytest.approx(m.avg_seek_s)
        assert m.seek_time(10 * m.full_seek_span) == pytest.approx(m.avg_seek_s)

    def test_fragmented_write_slower(self):
        # Same bytes: one run vs 64 scattered runs.
        contiguous = write_time_for_segments(DiskHead(), [(0, 64 * 1024)])
        runs = [(i * 1024 * 1024, 1024) for i in range(64)]
        fragmented = write_time_for_segments(DiskHead(), runs)
        assert fragmented > 5 * contiguous

    def test_adjacent_runs_coalesce(self):
        head = DiskHead()
        t = write_time_for_segments(head, [(0, 1024), (1024, 1024), (2048, 1024)])
        head2 = DiskHead()
        t_single = write_time_for_segments(head2, [(0, 3072)])
        # Adjacent runs only pay the per-request overhead extra.
        assert t == pytest.approx(
            t_single + 2 * head.model.per_request_s, rel=1e-6
        )

    def test_stats(self):
        head = DiskHead()
        head.access_time(0, 100)
        head.access_time(100, 50)
        assert head.requests == 2
        assert head.bytes_written == 150
        assert head.position == 150

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskHead().access_time(-1, 10)


class TestMemoryModel:
    def test_per_run_penalty(self):
        m = MemoryModel()
        assert m.copy_time(4096, runs=64) > m.copy_time(4096, runs=1)

    def test_large_copies_bandwidth_bound(self):
        m = MemoryModel()
        big = 32 * 1024 * 1024
        # With few runs the per-run term is negligible.
        assert m.copy_time(big, runs=4) == pytest.approx(
            big / m.copy_Bps, rel=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModel().copy_time(-1)


class TestBufferCache:
    def test_dirty_tracking_and_merge(self):
        c = BufferCache()
        c.write("f", 0, 100)
        c.write("f", 100, 50)
        c.write("f", 300, 10)
        assert c.dirty_runs("f") == [(0, 150), (300, 10)]
        assert c.bytes_cached == 160

    def test_write_runs(self):
        c = BufferCache()
        t = c.write_runs("f", [(0, 10), (20, 10)])
        assert t > 0
        assert c.dirty_runs("f") == [(0, 10), (20, 10)]

    def test_overlapping_runs_merge(self):
        c = BufferCache()
        c.write("f", 0, 100)
        c.write("f", 50, 100)
        assert c.dirty_runs("f") == [(0, 150)]

    def test_clear(self):
        c = BufferCache()
        c.write("f", 0, 10)
        c.clear("f")
        assert c.dirty_runs("f") == []

    def test_zero_write_free(self):
        c = BufferCache()
        assert c.write("f", 0, 0) == 0.0
