"""Unit tests for cluster assembly and metrics records."""

import time

import pytest

from repro.simulation import (
    Cluster,
    ClusterConfig,
    ScatterBreakdown,
    Stopwatch,
    WriteBreakdown,
    mean_breakdown,
)


class TestClusterConfig:
    def test_defaults_match_paper(self):
        c = ClusterConfig()
        assert c.compute_nodes == 4
        assert c.io_nodes == 4
        assert c.contiguous_write_optimized is False  # the paper's setup

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(compute_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(io_nodes=0)


class TestCluster:
    def test_node_naming(self):
        cluster = Cluster(ClusterConfig(compute_nodes=2, io_nodes=3))
        assert [n.name for n in cluster.compute] == ["compute0", "compute1"]
        assert [n.name for n in cluster.io] == ["io0", "io1", "io2"]

    def test_subfile_round_robin(self):
        cluster = Cluster(ClusterConfig(io_nodes=3))
        assert cluster.io_node_for(0).index == 0
        assert cluster.io_node_for(4).index == 1
        assert cluster.io_node_for(5).index == 2

    def test_device_state_persists_across_operations(self):
        cluster = Cluster(ClusterConfig())
        cluster.io[0].disk.access_time(0, 100)
        q1 = cluster.new_operation()
        q2 = cluster.new_operation()
        assert q1 is not q2
        assert cluster.io[0].disk.bytes_written == 100


class TestStopwatch:
    def test_measure_accumulates(self):
        sw = Stopwatch()
        with sw.measure("a"):
            time.sleep(0.002)
        with sw.measure("a"):
            time.sleep(0.002)
        assert sw.us("a") >= 3000
        assert sw.us("missing") == 0.0

    def test_add(self):
        sw = Stopwatch()
        sw.add("x", 0.5)
        sw.add("x", 0.25)
        assert sw.totals["x"] == pytest.approx(0.75)

    def test_exception_safe(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            with sw.measure("boom"):
                raise RuntimeError
        assert "boom" in sw.totals

    def test_empty_phase_list(self):
        sw = Stopwatch()
        assert sw.totals == {}
        assert sw.us("anything") == 0.0

    def test_nested_measure(self):
        # The outer phase's wall time includes the inner one's; both
        # accumulate under their own names.
        sw = Stopwatch()
        with sw.measure("outer"):
            with sw.measure("inner"):
                time.sleep(0.002)
        assert sw.totals["outer"] >= sw.totals["inner"] > 0.0

    def test_backed_by_span_tree(self):
        # The stopwatch's phases are spans, so they flow straight into
        # the obs exporters.
        from repro.obs.export import trace_to_dict

        sw = Stopwatch("bench")
        with sw.measure("a"):
            pass
        sw.add("a", 0.5)
        sw.add("b", 0.25)
        assert [c.name for c in sw.root.children] == ["a", "a", "b"]
        assert sw.totals["a"] == pytest.approx(
            0.5 + sw.root.children[0].wall_s
        )
        d = trace_to_dict(sw.root)[0]
        assert d["name"] == "bench"
        assert len(d["children"]) == 3


class TestBreakdowns:
    def test_write_breakdown_addition(self):
        a = WriteBreakdown(t_i=1, t_m=2, t_g=3, t_w_bc=4, t_w_disk=5)
        b = WriteBreakdown(t_i=10, t_m=20, t_g=30, t_w_bc=40, t_w_disk=50)
        c = a + b
        assert (c.t_i, c.t_m, c.t_g, c.t_w_bc, c.t_w_disk) == (11, 22, 33, 44, 55)

    def test_scatter_breakdown_addition(self):
        c = ScatterBreakdown(1, 2) + ScatterBreakdown(3, 4)
        assert (c.t_sc_bc, c.t_sc_disk) == (4, 6)

    def test_mean(self):
        rows = [WriteBreakdown(t_i=2), WriteBreakdown(t_i=4)]
        m = mean_breakdown(rows)
        assert m.t_i == 3

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_breakdown([])
