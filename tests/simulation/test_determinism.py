"""Determinism guarantees of the simulation.

Reproducibility is the whole point of replacing hardware with a model:
given the same inputs, every modelled number must be bit-identical run
to run, machine to machine.  (Measured columns — t_i, t_m, t_g — are
wall-clock and explicitly exempt.)
"""

import numpy as np

from repro.bench import MatrixWorkload
from repro.clusterfile import Clusterfile
from repro.clusterfile.relayout import relayout
from repro.distributions import matrix_partition
from repro.simulation import ClusterConfig


def run_write(n=128, layout="c"):
    w = MatrixWorkload(n, layout)
    data = w.data()
    fs = Clusterfile(ClusterConfig())
    fs.create("m", w.physical())
    logical = w.logical()
    for c in range(w.nprocs):
        fs.set_view("m", c, logical)
    return fs.write("m", w.view_accesses(data), to_disk=True)


class TestModelledColumnsDeterministic:
    def test_write_times_identical_across_runs(self):
        a = run_write()
        b = run_write()
        for c in a.per_compute:
            assert a.per_compute[c].t_w_bc == b.per_compute[c].t_w_bc
            assert a.per_compute[c].t_w_disk == b.per_compute[c].t_w_disk
        for i in a.per_io:
            assert a.per_io[i].t_sc_bc == b.per_io[i].t_sc_bc
            assert a.per_io[i].t_sc_disk == b.per_io[i].t_sc_disk

    def test_traffic_identical(self):
        a = run_write()
        b = run_write()
        assert a.messages == b.messages
        assert a.payload_bytes == b.payload_bytes

    def test_relayout_makespan_deterministic(self):
        outs = []
        for _ in range(2):
            fs = Clusterfile(ClusterConfig())
            n = 64
            fs.create("m", matrix_partition("c", n, n, 4))
            data = np.arange(n * n, dtype=np.uint8)
            from repro.redistribution import distribute

            pieces = distribute(data, matrix_partition("c", n, n, 4))
            for s, piece in enumerate(pieces):
                fs.open("m").stores[s].view(0, piece.size - 1)[:] = piece
            outs.append(relayout(fs, "m", matrix_partition("r", n, n, 4)))
        assert outs[0].makespan_s == outs[1].makespan_s
        assert outs[0].disk_busy_s == outs[1].disk_busy_s


class TestStatefulDevicesEvolve:
    """Device state evolving between operations is intentional — the
    second write of the same data costs differently (head position)."""

    def test_back_to_back_writes_share_state(self):
        w = MatrixWorkload(128, "r")
        data = w.data()
        fs = Clusterfile(ClusterConfig())
        fs.create("m", w.physical())
        for c in range(w.nprocs):
            fs.set_view("m", c, w.logical())
        first = fs.write("m", w.view_accesses(data), to_disk=True)
        second = fs.write("m", w.view_accesses(data), to_disk=True)
        t1 = max(b.t_w_disk for b in first.per_compute.values())
        t2 = max(b.t_w_disk for b in second.per_compute.values())
        # Second write rewrites from offset 0: the head must travel back,
        # so it cannot be cheaper than the first (which started at 0).
        assert t2 >= t1
        # But a fresh deployment reproduces the first time exactly.
        fs2 = Clusterfile(ClusterConfig())
        fs2.create("m", w.physical())
        for c in range(w.nprocs):
            fs2.set_view("m", c, w.logical())
        again = fs2.write("m", w.view_accesses(data), to_disk=True)
        assert (
            max(b.t_w_disk for b in again.per_compute.values()) == t1
        )


class TestTrafficAccounting:
    """The network records every message the file system sends - the
    aggregation statistics the paper's §1 argument rests on."""

    def test_write_traffic_recorded(self):
        from repro.bench import MatrixWorkload
        from repro.clusterfile import Clusterfile
        from repro.simulation import ClusterConfig

        w = MatrixWorkload(64, "c")
        fs = Clusterfile(ClusterConfig())
        fs.create("m", w.physical())
        for c in range(4):
            fs.set_view("m", c, w.logical())
        fs.write("m", w.view_accesses(w.data()))
        stats = fs.cluster.network.stats
        # 16 data messages + 16 headers; every pair compute->io appears.
        assert stats.messages == 32
        assert stats.bytes >= 64 * 64
        pairs = {p for p in stats.by_pair}
        assert ("compute0", "io3") in pairs
        assert len(pairs) == 16

    def test_matched_layout_sends_fewer_messages(self):
        from repro.bench import MatrixWorkload
        from repro.clusterfile import Clusterfile
        from repro.simulation import ClusterConfig

        counts = {}
        for layout in ("c", "r"):
            w = MatrixWorkload(64, layout)
            fs = Clusterfile(ClusterConfig())
            fs.create("m", w.physical())
            for c in range(4):
                fs.set_view("m", c, w.logical())
            fs.write("m", w.view_accesses(w.data()))
            counts[layout] = fs.cluster.network.stats.messages
        assert counts["r"] == counts["c"] // 4
