"""Tests for the benchmark harness itself (small sizes, fast)."""

import pytest

from repro.bench import (
    MatrixWorkload,
    PAPER_TABLE1,
    PAPER_TABLE2,
    format_table1,
    format_table2,
    paper_workloads,
    run_workload,
    shape_checks_table1,
    shape_checks_table2,
    table1,
    table2,
)
from repro.bench.experiments import Table1Row, Table2Row


class TestWorkloads:
    def test_grid(self):
        ws = paper_workloads()
        assert len(ws) == 12
        assert {w.n for w in ws} == {256, 512, 1024, 2048}

    def test_partitions_are_consistent(self):
        w = MatrixWorkload(64, "b")
        assert w.physical().size == 64 * 64
        assert w.logical().size == 64 * 64
        assert w.bytes_per_process == 1024

    def test_view_accesses_cover_data(self):
        w = MatrixWorkload(32, "r")
        data = w.data()
        acc = w.view_accesses(data)
        assert len(acc) == 4
        assert sum(a[2].size for a in acc) == data.size

    def test_label(self):
        assert MatrixWorkload(256, "c").label == "256x256 c-r"


class TestRunWorkload:
    def test_produces_rows_and_verifies(self):
        res = run_workload(MatrixWorkload(64, "c"), repeats=1)
        assert isinstance(res.table1, Table1Row)
        assert isinstance(res.table2, Table2Row)
        assert res.payload_bytes == 64 * 64
        assert res.table1.t_i > 0
        assert res.table2.t_sc_disk > res.table2.t_sc_bc

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            run_workload(MatrixWorkload(64, "c"), repeats=0)

    def test_matched_layout_row(self):
        res = run_workload(MatrixWorkload(64, "r"), repeats=1)
        assert res.table1.t_g == 0.0
        assert res.table1.t_m < 50  # identity fast path


class TestTablesSmall:
    @pytest.fixture(scope="class")
    def rows1(self):
        return table1(sizes=(128, 256), repeats=2)

    @pytest.fixture(scope="class")
    def rows2(self):
        return table2(sizes=(128, 256), repeats=2)

    def test_table1_grid(self, rows1):
        assert len(rows1) == 6
        assert {(r.size, r.physical) for r in rows1} == {
            (n, ph) for n in (128, 256) for ph in ("c", "b", "r")
        }

    def test_table1_shapes_hold_at_small_scale(self, rows1):
        checks = shape_checks_table1(rows1)
        # Assert the noise-robust structural checks at toy scale; the
        # measured-time orderings (t_i, t_g between mismatched layouts)
        # are asserted at full scale by benchmarks/bench_table1.py.
        for name in (
            "t_g zero for r-r",
            "t_m near zero for r-r",
            "t_w_disk best for r-r at small size",
        ):
            assert checks[name], name

    def test_table2_shapes_hold_at_small_scale(self, rows2):
        checks = shape_checks_table2(rows2)
        assert checks["t_sc ordering c>b>r at small size"]
        assert checks["t_sc grows with size"]

    def test_formatting_includes_paper_columns(self, rows1, rows2):
        # Only paper-size rows get the comparison column; at toy sizes
        # the table still renders.
        txt1 = format_table1(rows1)
        assert "t_w_disk" in txt1 and "128" in txt1
        txt2 = format_table2(rows2, compare=False)
        assert "t_sc_bc" in txt2

    def test_formatting_with_paper_rows(self):
        row = Table1Row(256, "c", "r", 1, 2, 3, 4, 5)
        txt = format_table1([row])
        assert "1229" in txt  # the paper's value appears alongside
        row2 = Table2Row(256, "r", "r", 1, 2)
        assert "918" in format_table2([row2])


class TestPaperConstants:
    def test_paper_tables_complete(self):
        keys = {(n, ph) for n in (256, 512, 1024, 2048) for ph in "cbr"}
        assert set(PAPER_TABLE1) == keys
        assert set(PAPER_TABLE2) == keys

    def test_paper_values_spot_checks(self):
        assert PAPER_TABLE1[(2048, "c")] == (1222, 22, 6501, 30781, 80793)
        assert PAPER_TABLE2[(256, "r")] == (45, 918)
