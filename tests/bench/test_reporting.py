"""Tests for the reporting/shape-check layer, including negatives: the
checks must actually *fail* when the data contradicts the paper."""

import pytest

from repro.bench.experiments import Table1Row, Table2Row
from repro.bench.reporting import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    format_table1,
    format_table2,
    shape_checks_table1,
    shape_checks_table2,
)


def t1(size, ph, t_i, t_m, t_g, bc, disk):
    return Table1Row(size, ph, "r", t_i, t_m, t_g, bc, disk)


def t2(size, ph, bc, disk):
    return Table2Row(size, ph, "r", bc, disk)


def paper_rows_table1():
    return [
        t1(size, ph, *PAPER_TABLE1[(size, ph)])
        for size in (256, 512, 1024, 2048)
        for ph in ("c", "b", "r")
    ]


def paper_rows_table2():
    return [
        t2(size, ph, *PAPER_TABLE2[(size, ph)])
        for size in (256, 512, 1024, 2048)
        for ph in ("c", "b", "r")
    ]


class TestChecksOnPaperData:
    """The paper's own numbers must pass every shape check — the checks
    encode the paper's claims, so this is their ground truth."""

    def test_table1_paper_numbers_pass(self):
        checks = shape_checks_table1(paper_rows_table1())
        assert all(checks.values()), checks

    def test_table2_paper_numbers_pass(self):
        checks = shape_checks_table2(paper_rows_table2())
        assert all(checks.values()), checks


class TestChecksRejectContradictions:
    def test_t_g_nonzero_for_matched_detected(self):
        rows = paper_rows_table1()
        bad = [
            t1(r.size, r.physical, r.t_i, r.t_m, 50.0, r.t_w_bc, r.t_w_disk)
            if r.physical == "r"
            else r
            for r in rows
        ]
        assert not shape_checks_table1(bad)["t_g zero for r-r"]

    def test_t_i_growth_detected(self):
        rows = [
            t1(r.size, r.physical, r.t_i * (r.size / 16), r.t_m, r.t_g,
               r.t_w_bc, r.t_w_disk)
            for r in paper_rows_table1()
        ]
        assert not shape_checks_table1(rows)["t_i roughly constant with size"]

    def test_inverted_write_ordering_detected(self):
        rows = []
        for r in paper_rows_table1():
            disk = r.t_w_disk
            if r.size == 256:
                disk = 100 if r.physical == "c" else 5000
            rows.append(
                t1(r.size, r.physical, r.t_i, r.t_m, r.t_g, r.t_w_bc, disk)
            )
        assert not shape_checks_table1(rows)[
            "t_w_disk best for r-r at small size"
        ]

    def test_non_convergence_detected(self):
        rows = []
        for r in paper_rows_table2():
            disk = r.t_sc_disk * (3 if r.physical == "c" and r.size == 2048 else 1)
            rows.append(t2(r.size, r.physical, r.t_sc_bc, disk))
        assert not shape_checks_table2(rows)["t_sc converges at large size"]


class TestFormatting:
    def test_table1_aligns_and_compares(self):
        text = format_table1(paper_rows_table1())
        lines = text.splitlines()
        assert lines[0].startswith("Table 1")
        assert len(lines) == 3 + 12
        # Every paper row shows its own values twice (ours == paper here).
        assert "80793" in text

    def test_table2_no_compare_variant(self):
        text = format_table2(paper_rows_table2(), compare=False)
        assert "paper:" not in text
        assert "41684" in text  # the measured column still prints values
