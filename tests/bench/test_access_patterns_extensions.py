"""Unit tests for trace generators and the extension experiments."""

import numpy as np
import pytest

from repro import matrix_partition, row_blocks
from repro.bench.access_patterns import (
    nested_strided,
    random_accesses,
    run_trace,
    sequential,
    simple_strided,
)
from repro.bench.extensions import read_table, scaling_table
from repro.clusterfile import Clusterfile
from repro.simulation import ClusterConfig


class TestGenerators:
    def test_sequential_covers_exactly(self):
        trace = sequential(100, 32)
        assert trace == [(0, 32), (32, 32), (64, 32), (96, 4)]
        assert sum(ln for _, ln in trace) == 100

    def test_sequential_validation(self):
        with pytest.raises(ValueError):
            sequential(100, 0)

    def test_simple_strided(self):
        trace = simple_strided(64, 8, 16)
        assert trace == [(0, 8), (16, 8), (32, 8), (48, 8)]

    def test_strided_validation(self):
        with pytest.raises(ValueError):
            simple_strided(64, 32, 16)

    def test_nested_strided(self):
        trace = nested_strided(64, 4, 8, 2, 32)
        assert trace == [(0, 4), (8, 4), (32, 4), (40, 4)]

    def test_nested_validation(self):
        with pytest.raises(ValueError):
            nested_strided(64, 8, 8, 4, 16)

    def test_random_deterministic(self):
        a = random_accesses(1000, 16, 5, seed=7)
        b = random_accesses(1000, 16, 5, seed=7)
        assert a == b
        assert all(0 <= off <= 1000 - 16 for off, _ in a)


class TestRunTrace:
    def test_result_accounting(self):
        fs = Clusterfile(ClusterConfig())
        n = 64
        fs.create("m", matrix_partition("c", n, n, 4))
        fs.set_view("m", 0, row_blocks(n, n, 4))
        trace = sequential(n * n // 4, 256)
        res = run_trace(fs, "m", 0, trace)
        assert res.accesses == len(trace)
        assert res.bytes == n * n // 4
        assert res.t_i_us > 0
        assert 0 < res.amortised_setup_share < 1

    def test_payload_callback(self):
        fs = Clusterfile(ClusterConfig())
        n = 32
        fs.create("m", matrix_partition("r", n, n, 4))
        fs.set_view("m", 0, row_blocks(n, n, 4))
        run_trace(
            fs, "m", 0, [(0, 16)], payload=lambda ln: np.full(ln, 9, np.uint8)
        )
        got = fs.read("m", [(0, 0, 16)])[0]
        assert (got == 9).all()


class TestReadTable:
    def test_small_grid(self):
        rows = read_table(sizes=(64,), repeats=1)
        assert len(rows) == 3
        by = {r.physical: r for r in rows}
        assert by["r"].t_s == 0.0
        assert by["r"].t_m < by["c"].t_m
        for r in rows:
            assert r.t_r_disk > r.t_r_bc > 0


class TestScalingTable:
    def test_small_sweep(self):
        rows = scaling_table(nprocs_list=(2, 4), layouts=("c", "r"),
                             bytes_per_process=32 * 32, repeats=1)
        by = {(r.nprocs, r.physical): r for r in rows}
        assert by[(2, "c")].messages == 8
        assert by[(2, "r")].messages == 4
        assert by[(4, "c")].messages == 32
        assert by[(4, "r")].messages == 8
        for r in rows:
            if r.physical == "r":
                assert r.t_g == 0.0
