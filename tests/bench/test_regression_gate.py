"""The perf-regression gate: extractors against the committed baseline
files, ratio verdicts, and CLI exit codes."""

import json
import os
import subprocess
import sys

import pytest

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)
sys.path.insert(0, BENCH_DIR)

import regression  # noqa: E402


def _load_baseline(name):
    path = regression.discover_baselines().get(name)
    if path is None or not os.path.exists(path):
        pytest.skip(f"no committed baseline for {name}")
    with open(path) as f:
        return json.load(f)


class TestDiscovery:
    def test_glob_finds_every_committed_baseline(self):
        found = regression.discover_baselines()
        # Every BENCH_*.json at the repo root is discovered, keyed by
        # its <name>, no registry edits needed.
        root = os.path.dirname(BENCH_DIR)
        committed = {
            f[len("BENCH_"):-len(".json")]
            for f in os.listdir(root)
            if f.startswith("BENCH_") and f.endswith(".json")
        }
        assert set(found) == committed
        assert "namespace" in found  # this PR's headline baseline
        for name, path in found.items():
            assert os.path.basename(path) == f"BENCH_{name}.json"

    def test_baseline_path_for_future_benchmarks(self):
        path = regression.baseline_path("brand_new")
        assert os.path.basename(path) == "BENCH_brand_new.json"


class TestExtractors:
    @pytest.mark.parametrize(
        "name", ["plan_cache", "faults", "service", "telemetry", "namespace"]
    )
    def test_committed_baselines_yield_metrics(self, name):
        metrics = regression.extract_metrics(_load_baseline(name))
        assert metrics, name
        labels = [label for label, _ in metrics]
        assert len(labels) == len(set(labels)), "labels must be unique"
        assert all(v > 0 for _, v in metrics)

    def test_unknown_benchmark_without_timings_rejected(self):
        with pytest.raises(ValueError, match="no timing metrics"):
            regression.extract_metrics({"benchmark": "nope", "count": 3})

    def test_generic_extractor_walks_timing_leaves(self):
        """A benchmark this tool has never heard of still gates, as
        long as its result carries *_s/*_us timing leaves."""
        result = {
            "benchmark": "future_bench",
            "ops": 100,  # not a timing: skipped
            "warm": {"wall_s": 0.5, "hit_rate": 0.9},
            "rows": [{"cold_us": 12.0}, {"cold_us": 15.0}],
            "ok": True,  # bools are never metrics
        }
        metrics = dict(regression.extract_metrics(result))
        assert metrics == {
            "warm.wall_s": 0.5,
            "rows[0].cold_us": 12.0,
            "rows[1].cold_us": 15.0,
        }


class TestCompare:
    def _fake(self, scale=1.0):
        return {
            "benchmark": "telemetry",
            "instrumented_wall_us": 1050.0 * scale,
            "bare_wall_us": 1000.0 * scale,
        }

    def test_identical_runs_are_ok(self):
        report = regression.compare(self._fake(), self._fake())
        assert report["verdict"] == "ok"
        assert report["median_ratio"] == pytest.approx(1.0)
        assert report["regressions"] == []

    def test_slowdown_between_warn_and_tolerance_warns(self):
        report = regression.compare(self._fake(), self._fake(1.15))
        assert report["verdict"] == "warn"
        assert set(report["regressions"]) == {
            "instrumented_wall_us", "bare_wall_us"
        }

    def test_slowdown_past_tolerance_fails(self):
        report = regression.compare(self._fake(), self._fake(1.30))
        assert report["verdict"] == "fail"

    def test_speedup_is_ok(self):
        report = regression.compare(self._fake(), self._fake(0.5))
        assert report["verdict"] == "ok"

    def test_median_is_robust_to_one_preempted_metric(self):
        base = {
            "benchmark": "service",
            "serial": {"wall_s": 1.0},
            "service": [
                {"workers": w, "wall_s": 0.5} for w in (1, 2, 4, 8)
            ],
        }
        fresh = json.loads(json.dumps(base))
        fresh["service"][0]["wall_s"] = 5.0  # one outlier
        report = regression.compare(base, fresh)
        assert report["verdict"] == "ok"
        assert report["regressions"] == ["service_wall_s:x1"]

    def test_benchmark_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            regression.compare(
                self._fake(), {"benchmark": "service", "serial": {"wall_s": 1},
                               "service": []},
            )

    def test_warn_above_tolerance_rejected(self):
        with pytest.raises(ValueError, match="warn"):
            regression.compare(self._fake(), self._fake(), tolerance=0.1,
                               warn=0.2)


class TestCli:
    def _compare_cli(self, tmp_path, scale):
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        doc = {
            "benchmark": "telemetry",
            "instrumented_wall_us": 1000.0,
            "bare_wall_us": 950.0,
        }
        base.write_text(json.dumps(doc))
        doc = {k: (v * scale if isinstance(v, float) else v)
               for k, v in doc.items()}
        fresh.write_text(json.dumps(doc))
        return subprocess.run(
            [sys.executable, os.path.join(BENCH_DIR, "regression.py"),
             "compare", str(base), str(fresh)],
            capture_output=True, text=True,
        )

    def test_ok_exits_zero(self, tmp_path):
        p = self._compare_cli(tmp_path, 1.0)
        assert p.returncode == 0
        assert "[OK" in p.stdout

    def test_warn_exits_zero_but_is_loud(self, tmp_path):
        p = self._compare_cli(tmp_path, 1.15)
        assert p.returncode == 0
        assert "WARNING" in p.stdout

    def test_fail_exits_nonzero(self, tmp_path):
        p = self._compare_cli(tmp_path, 2.0)
        assert p.returncode == 1
        assert "[FAIL" in p.stdout
