"""Tests for redistribution plans and the memory-memory executor."""

import numpy as np
import pytest

from repro.core import Falls, Partition
from repro.distributions import matrix_partition, round_robin
from repro.redistribution import (
    build_plan,
    collect,
    distribute,
    execute_plan,
    redistribute,
    redistribute_bytewise,
    redistribute_bytewise_vectorized,
)

LAYOUTS = ["r", "c", "b"]


@pytest.fixture(scope="module")
def matrix_data():
    rng = np.random.default_rng(11)
    return rng.integers(0, 256, 32 * 32, dtype=np.uint8)


class TestDistributeCollect:
    def test_roundtrip(self, matrix_data):
        for layout in LAYOUTS:
            p = matrix_partition(layout, 32, 32, 4)
            buffers = distribute(matrix_data, p)
            assert sum(b.size for b in buffers) == matrix_data.size
            back = collect(buffers, p, matrix_data.size)
            np.testing.assert_array_equal(back, matrix_data)

    def test_displacement_bytes_dropped_and_filled(self):
        p = Partition([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)], displacement=3)
        data = np.arange(11, dtype=np.uint8)
        buffers = distribute(data, p)
        np.testing.assert_array_equal(buffers[0], [3, 4, 7, 8])
        np.testing.assert_array_equal(buffers[1], [5, 6, 9, 10])
        back = collect(buffers, p, 11, fill=255)
        np.testing.assert_array_equal(back[:3], [255, 255, 255])
        np.testing.assert_array_equal(back[3:], data[3:])

    def test_partial_period(self):
        p = round_robin(3, 2)  # period 6
        data = np.arange(8, dtype=np.uint8)
        buffers = distribute(data, p)
        np.testing.assert_array_equal(buffers[0], [0, 1, 6, 7])
        np.testing.assert_array_equal(buffers[1], [2, 3])
        back = collect(buffers, p, 8)
        np.testing.assert_array_equal(back, data)

    def test_wrong_buffer_sizes_rejected(self):
        p = round_robin(2, 2)
        with pytest.raises(ValueError):
            collect([np.zeros(3, np.uint8)], p, 8)
        with pytest.raises(ValueError):
            collect([np.zeros(3, np.uint8), np.zeros(4, np.uint8)], p, 8)


class TestPlans:
    def test_matching_partitions_identity(self):
        p1 = matrix_partition("r", 16, 16, 4)
        p2 = matrix_partition("r", 16, 16, 4)
        plan = build_plan(p1, p2)
        assert plan.is_identity
        assert plan.message_count == 4
        # Every transfer is a single contiguous fragment.
        for t in plan.transfers:
            assert t.src_fragments_per_period == 1
            assert t.dst_fragments_per_period == 1

    def test_mismatched_partitions_not_identity(self):
        plan = build_plan(
            matrix_partition("c", 16, 16, 4), matrix_partition("r", 16, 16, 4)
        )
        assert not plan.is_identity
        assert plan.message_count == 16  # all-to-all

    def test_square_to_row_message_count(self):
        # A 2x2 block grid sends each block to the rows it spans: each of
        # the 4 block elements intersects exactly 2 row elements.
        plan = build_plan(
            matrix_partition("b", 16, 16, 4), matrix_partition("r", 16, 16, 4)
        )
        assert plan.message_count == 8
        for i in range(4):
            assert len(plan.transfers_from(i)) == 2

    def test_bytes_accounting(self, matrix_data):
        plan = build_plan(
            matrix_partition("c", 32, 32, 4), matrix_partition("r", 32, 32, 4)
        )
        assert plan.total_bytes(matrix_data.size) == matrix_data.size
        assert plan.total_bytes(100) == 100

    def test_fragment_statistics_track_mismatch(self):
        rr = build_plan(
            matrix_partition("r", 32, 32, 4), matrix_partition("r", 32, 32, 4)
        )
        cr = build_plan(
            matrix_partition("c", 32, 32, 4), matrix_partition("r", 32, 32, 4)
        )
        br = build_plan(
            matrix_partition("b", 32, 32, 4), matrix_partition("r", 32, 32, 4)
        )
        # The worse the match, the more fragments per byte (paper §8.2:
        # c-r repartitions into many small pieces, r-r into none).
        assert (
            rr.fragment_statistics()["mean_fragment_bytes"]
            > br.fragment_statistics()["mean_fragment_bytes"]
            > cr.fragment_statistics()["mean_fragment_bytes"]
        )


class TestExecution:
    @pytest.mark.parametrize("src_layout", LAYOUTS)
    @pytest.mark.parametrize("dst_layout", LAYOUTS)
    def test_all_layout_pairs_roundtrip(self, matrix_data, src_layout, dst_layout):
        ps = matrix_partition(src_layout, 32, 32, 4)
        pd = matrix_partition(dst_layout, 32, 32, 4)
        src = distribute(matrix_data, ps)
        dst = execute_plan(build_plan(ps, pd), src, matrix_data.size)
        back = collect(dst, pd, matrix_data.size)
        np.testing.assert_array_equal(back, matrix_data)

    def test_plan_reuse(self, matrix_data):
        ps = matrix_partition("c", 32, 32, 4)
        pd = matrix_partition("b", 32, 32, 4)
        plan = build_plan(ps, pd)
        for shift in range(3):
            data = np.roll(matrix_data, shift)
            dst = redistribute(ps, pd, distribute(data, ps), data.size, plan=plan)
            np.testing.assert_array_equal(collect(dst, pd, data.size), data)

    def test_plan_partition_mismatch_rejected(self, matrix_data):
        ps = matrix_partition("c", 32, 32, 4)
        pd = matrix_partition("b", 32, 32, 4)
        plan = build_plan(ps, pd)
        with pytest.raises(ValueError):
            redistribute(pd, ps, distribute(matrix_data, pd), matrix_data.size,
                         plan=plan)

    def test_different_pattern_sizes(self):
        # Stripe-unit change: 2-byte units to 3-byte units, lcm period 12.
        src_p = round_robin(2, 2)
        dst_p = round_robin(2, 3)
        data = np.arange(48, dtype=np.uint8)
        out = execute_plan(
            build_plan(src_p, dst_p), distribute(data, src_p), data.size
        )
        np.testing.assert_array_equal(collect(out, dst_p, data.size), data)

    def test_different_displacements(self):
        src_p = round_robin(2, 4, displacement=0)
        dst_p = round_robin(2, 4, displacement=6)
        data = np.arange(64, dtype=np.uint8)
        out = execute_plan(
            build_plan(src_p, dst_p), distribute(data, src_p), data.size
        )
        back = collect(out, dst_p, data.size)
        # Only bytes beyond the destination displacement are defined.
        np.testing.assert_array_equal(back[6:], data[6:])

    def test_partial_trailing_period(self):
        src_p = round_robin(4, 4)  # period 16
        dst_p = round_robin(2, 8)  # period 16
        data = np.arange(41, dtype=np.uint8)  # 2.5625 periods
        out = execute_plan(
            build_plan(src_p, dst_p), distribute(data, src_p), data.size
        )
        np.testing.assert_array_equal(collect(out, dst_p, data.size), data)


class TestNaiveBaselines:
    def test_scalar_matches_executor(self):
        ps = matrix_partition("c", 8, 8, 2)
        pd = matrix_partition("b", 8, 8, 4)
        data = np.arange(64, dtype=np.uint8)
        src = distribute(data, ps)
        fast = execute_plan(build_plan(ps, pd), src, data.size)
        slow = redistribute_bytewise(ps, pd, src, data.size)
        for a, b in zip(fast, slow):
            np.testing.assert_array_equal(a, b)

    def test_vectorized_matches_executor(self, matrix_data):
        for src_layout in LAYOUTS:
            for dst_layout in LAYOUTS:
                ps = matrix_partition(src_layout, 32, 32, 4)
                pd = matrix_partition(dst_layout, 32, 32, 4)
                src = distribute(matrix_data, ps)
                fast = execute_plan(build_plan(ps, pd), src, matrix_data.size)
                slow = redistribute_bytewise_vectorized(
                    ps, pd, src, matrix_data.size
                )
                for a, b in zip(fast, slow):
                    np.testing.assert_array_equal(a, b)

    def test_naive_with_displacements(self):
        src_p = round_robin(2, 4, displacement=2)
        dst_p = round_robin(4, 2, displacement=5)
        data = np.arange(37, dtype=np.uint8)
        src = distribute(data, src_p)
        fast = execute_plan(build_plan(src_p, dst_p), src, data.size)
        slow = redistribute_bytewise(src_p, dst_p, src, data.size)
        for a, b in zip(fast, slow):
            np.testing.assert_array_equal(a, b)
