"""Tests for the process-wide plan cache and the reusable executor."""

import os

import numpy as np
import pytest

from repro.core.serialize import partition_from_json, partition_to_json
from repro.distributions import matrix_partition, round_robin
from repro.redistribution import (
    PlanCache,
    PlanExecutor,
    build_plan,
    clear_plan_cache,
    collect,
    configure_plan_cache,
    distribute,
    execute_plan,
    get_mapper,
    get_plan,
    plan_cache_stats,
    redistribute,
)


@pytest.fixture(autouse=True)
def _isolate_global_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()
    configure_plan_cache(256)


def _pair(n=32, a="r", b="c", p=4):
    return matrix_partition(a, n, n, p), matrix_partition(b, n, n, p)


class TestPlanCache:
    def test_hit_returns_same_object(self):
        cache = PlanCache(capacity=4)
        src, dst = _pair()
        first = cache.get(src, dst)
        assert cache.get(src, dst) is first
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1

    def test_structural_hit_across_json_roundtrip(self):
        cache = PlanCache(capacity=4)
        src, dst = _pair()
        first = cache.get(src, dst)
        src2 = partition_from_json(partition_to_json(src))
        dst2 = partition_from_json(partition_to_json(dst))
        assert cache.get(src2, dst2) is first

    def test_direction_matters(self):
        cache = PlanCache(capacity=4)
        src, dst = _pair()
        assert cache.get(src, dst) is not cache.get(dst, src)
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        pairs = [_pair(b=l) for l in ("c", "b")] + [
            (round_robin(2, 3), round_robin(3, 2))
        ]
        plans = [cache.get(s, d) for s, d in pairs]
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2
        # The first pair was evicted: re-fetching misses and rebuilds.
        rebuilt = cache.get(*pairs[0])
        assert rebuilt is not plans[0]
        # The last two still hit.
        assert cache.get(*pairs[2]) is plans[2]

    def test_lru_order_updated_on_hit(self):
        cache = PlanCache(capacity=2)
        s1, d1 = _pair(b="c")
        s2, d2 = _pair(b="b")
        p1 = cache.get(s1, d1)
        cache.get(s2, d2)
        cache.get(s1, d1)  # touch: pair 1 is now most recent
        cache.get(round_robin(2, 3), round_robin(3, 2))  # evicts pair 2
        assert cache.get(s1, d1) is p1
        assert cache.stats()["evictions"] == 1

    def test_capacity_zero_disables(self):
        cache = PlanCache(capacity=0)
        src, dst = _pair()
        a = cache.get(src, dst)
        b = cache.get(src, dst)
        assert a is not b
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_configure_shrinks(self):
        cache = PlanCache(capacity=8)
        cache.get(*_pair(b="c"))
        cache.get(*_pair(b="b"))
        cache.configure(1)
        assert len(cache) == 1
        assert cache.stats()["evictions"] == 1

    def test_clear_resets(self):
        cache = PlanCache(capacity=4)
        cache.get(*_pair())
        cache.get(*_pair())
        cache.clear()
        stats = cache.stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "size": 0,
            "capacity": 4,
        }

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)
        with pytest.raises(ValueError):
            PlanCache(capacity=2).configure(-3)

    def test_global_cache_and_stats(self):
        src, dst = _pair()
        plan = get_plan(src, dst)
        assert get_plan(src, dst) is plan
        stats = plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        clear_plan_cache()
        assert plan_cache_stats()["size"] == 0

    def test_global_mapper_cache(self):
        src, _ = _pair()
        assert get_mapper(src, 0) is get_mapper(src, 0)
        assert get_mapper(src, 0) is not get_mapper(src, 1)

    def test_named_cache_mirrors_into_metrics(self):
        from repro.obs import metrics

        metrics.reset_metrics("plan_cache.test")
        cache = PlanCache(capacity=1, name="test")
        p1 = _pair(b="c")
        p2 = _pair(b="b")
        cache.get(*p1)
        cache.get(*p1)
        cache.get(*p2)  # evicts p1
        snap = metrics.snapshot("plan_cache.test")
        assert snap == {
            "plan_cache.test.hits": 1,
            "plan_cache.test.misses": 2,
            "plan_cache.test.evictions": 1,
        }
        cache.clear()
        assert metrics.snapshot("plan_cache.test") == {}

    def test_unnamed_cache_stays_out_of_metrics(self):
        from repro.obs import metrics

        before = metrics.snapshot("plan_cache")
        PlanCache(capacity=2).get(*_pair())
        assert metrics.snapshot("plan_cache") == before


class TestCapacityEnvKnob:
    """REPRO_PLAN_CACHE_CAPACITY is read at import time, so a fresh
    interpreter is required to observe it (this is also the CI guard
    against regressions in the env parsing)."""

    def _capacity_under_env(self, value):
        import subprocess
        import sys

        code = (
            "from repro.redistribution.plan_cache import plan_cache_stats; "
            "print(plan_cache_stats()['capacity'])"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, REPRO_PLAN_CACHE_CAPACITY=value)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return int(out.stdout.strip())

    def test_env_sets_capacity(self):
        assert self._capacity_under_env("7") == 7

    def test_env_zero_disables(self):
        assert self._capacity_under_env("0") == 0


class TestEndpointIndices:
    def test_transfers_from_to_match_scan(self):
        src, dst = _pair(b="b")
        plan = build_plan(src, dst)
        for i in range(src.num_elements):
            assert plan.transfers_from(i) == [
                t for t in plan.transfers if t.src_element == i
            ]
        for j in range(dst.num_elements):
            assert plan.transfers_to(j) == [
                t for t in plan.transfers if t.dst_element == j
            ]
        assert plan.transfers_from(99) == []
        assert plan.transfers_to(99) == []


class TestPlanExecutor:
    def test_repeated_execution_is_stable(self):
        rng = np.random.default_rng(5)
        src, dst = _pair(b="b")
        n = 32 * 32
        plan = build_plan(src, dst)
        ex = PlanExecutor(plan)
        for _ in range(3):
            data = rng.integers(0, 256, n, dtype=np.uint8)
            out = ex.execute(distribute(data, src), n)
            np.testing.assert_array_equal(collect(out, dst, n), data)

    def test_parallel_matches_serial(self):
        rng = np.random.default_rng(6)
        src, dst = _pair(b="c")
        n = 32 * 32
        data = rng.integers(0, 256, n, dtype=np.uint8)
        buffers = distribute(data, src)
        plan = build_plan(src, dst)
        serial = execute_plan(plan, buffers, n)
        par = execute_plan(plan, buffers, n, parallel=True)
        for a, b in zip(serial, par):
            np.testing.assert_array_equal(a, b)

    def test_scratch_reused_across_runs(self):
        src, dst = _pair(b="b")
        n = 32 * 32
        plan = build_plan(src, dst)
        ex = PlanExecutor(plan)
        data = np.arange(n, dtype=np.uint8)
        ex.execute(distribute(data, src), n)
        scratch_ids = {k: id(v) for k, v in ex._tls.scratch.items()}
        assert scratch_ids  # the b layout fragments: scratch is in play
        ex.execute(distribute(data, src), n)
        assert {k: id(v) for k, v in ex._tls.scratch.items()} == scratch_ids


class TestRedistributeStructural:
    def test_plan_for_equal_partitions_accepted(self):
        rng = np.random.default_rng(7)
        src, dst = _pair(b="c")
        n = 32 * 32
        data = rng.integers(0, 256, n, dtype=np.uint8)
        plan = get_plan(src, dst)
        # Structurally equal rebuilt partitions must be usable with a
        # cached plan (identity comparison would reject them).
        src2 = partition_from_json(partition_to_json(src))
        dst2 = partition_from_json(partition_to_json(dst))
        out = redistribute(src2, dst2, distribute(data, src), n, plan=plan)
        np.testing.assert_array_equal(collect(out, dst, n), data)

    def test_mismatched_plan_rejected(self):
        src, dst = _pair(b="c")
        other = matrix_partition("b", 32, 32, 4)
        plan = build_plan(src, dst)
        data = distribute(np.zeros(32 * 32, np.uint8), src)
        with pytest.raises(ValueError):
            redistribute(src, other, data, 32 * 32, plan=plan)

    def test_redistribute_uses_global_cache(self):
        src, dst = _pair(b="b")
        n = 32 * 32
        data = distribute(np.arange(n, dtype=np.uint8) % 251, src)
        redistribute(src, dst, data, n)
        redistribute(src, dst, data, n)
        stats = plan_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
