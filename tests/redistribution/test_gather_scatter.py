"""Unit tests for GATHER/SCATTER across all execution strategies."""

import numpy as np
import pytest

from repro.core import Falls, FallsSet, PeriodicFallsSet
from repro.core.segments import segments_from_pairs
from repro.redistribution.gather_scatter import (
    gather,
    gather_segments,
    scatter,
    scatter_segments,
)

STRATEGIES = ["auto", "strided", "fancy", "slices"]


def reference_gather(src, segs):
    starts, lengths = segs
    out = []
    for a, ln in zip(starts.tolist(), lengths.tolist()):
        out.extend(src[a : a + ln].tolist())
    return np.array(out, dtype=src.dtype)


class TestGatherSegments:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_uniform_segments(self, strategy):
        src = np.arange(64, dtype=np.uint8)
        segs = segments_from_pairs([(0, 3), (16, 19), (32, 35), (48, 51)])
        got = gather_segments(src, segs, strategy=strategy)
        np.testing.assert_array_equal(got, reference_gather(src, segs))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_irregular_segments(self, strategy):
        src = np.arange(100, dtype=np.uint8)
        segs = segments_from_pairs([(0, 0), (5, 9), (20, 27), (99, 99)])
        got = gather_segments(src, segs, strategy=strategy)
        np.testing.assert_array_equal(got, reference_gather(src, segs))

    def test_strided_overread_falls_back(self):
        # Last segment ends exactly at the buffer end but an as_strided
        # view padded to the stride would over-read; must still be exact.
        src = np.arange(10, dtype=np.uint8)
        segs = segments_from_pairs([(0, 1), (4, 5), (8, 9)])
        got = gather_segments(src, segs, strategy="strided")
        np.testing.assert_array_equal(got, np.array([0, 1, 4, 5, 8, 9]))

    def test_empty(self):
        src = np.arange(4, dtype=np.uint8)
        segs = segments_from_pairs([])
        assert gather_segments(src, segs).size == 0

    def test_provided_destination(self):
        src = np.arange(16, dtype=np.uint8)
        segs = segments_from_pairs([(2, 5)])
        dst = np.zeros(10, dtype=np.uint8)
        out = gather_segments(src, segs, dst=dst)
        assert out.base is dst or out is dst[:4]
        np.testing.assert_array_equal(dst[:4], [2, 3, 4, 5])

    def test_destination_too_small(self):
        src = np.arange(16, dtype=np.uint8)
        segs = segments_from_pairs([(0, 7)])
        with pytest.raises(ValueError):
            gather_segments(src, segs, dst=np.zeros(4, dtype=np.uint8))


class TestScatterSegments:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_roundtrip(self, strategy):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 256, 128, dtype=np.uint8)
        segs = segments_from_pairs([(3, 10), (20, 20), (50, 69), (100, 127)])
        packed = gather_segments(src, segs)
        dst = np.zeros(128, dtype=np.uint8)
        scatter_segments(dst, segs, packed, strategy=strategy)
        # Scattered positions match, untouched positions stay zero.
        starts, lengths = segs
        mask = np.zeros(128, dtype=bool)
        for a, ln in zip(starts.tolist(), lengths.tolist()):
            mask[a : a + ln] = True
        np.testing.assert_array_equal(dst[mask], src[mask])
        assert not dst[~mask].any()

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_uniform_scatter_writes_in_place(self, strategy):
        dst = np.zeros(32, dtype=np.uint8)
        segs = segments_from_pairs([(0, 1), (8, 9), (16, 17)])
        scatter_segments(dst, segs, np.array([1, 2, 3, 4, 5, 6], dtype=np.uint8),
                         strategy=strategy)
        np.testing.assert_array_equal(np.flatnonzero(dst), [0, 1, 8, 9, 16, 17])
        np.testing.assert_array_equal(dst[[0, 1, 8, 9, 16, 17]], [1, 2, 3, 4, 5, 6])

    def test_source_too_small(self):
        dst = np.zeros(16, dtype=np.uint8)
        segs = segments_from_pairs([(0, 7)])
        with pytest.raises(ValueError):
            scatter_segments(dst, segs, np.zeros(4, dtype=np.uint8))

    def test_empty_noop(self):
        dst = np.zeros(8, dtype=np.uint8)
        scatter_segments(dst, segments_from_pairs([]), np.empty(0, dtype=np.uint8))
        assert not dst.any()


class TestPaperStyleGatherScatter:
    """§8.1: gather between limits lo/hi from a view buffer via a FALLS set."""

    def test_figure5_gather(self):
        # PROJ^{V∩S}_V = (0,0,4,2): bytes 0 and 4 of the view interval.
        proj = PeriodicFallsSet(FallsSet([Falls(0, 0, 4, 2)]), 0, 8)
        view_buf = np.array([10, 11, 12, 13, 14, 15, 16, 17], dtype=np.uint8)
        out = np.empty(2, dtype=np.uint8)
        gather(out, view_buf, 0, 7, proj)
        np.testing.assert_array_equal(out, [10, 14])

    def test_figure5_scatter(self):
        proj = PeriodicFallsSet(FallsSet([Falls(0, 0, 4, 2)]), 0, 8)
        subfile = np.zeros(8, dtype=np.uint8)
        scatter(subfile, np.array([10, 14], dtype=np.uint8), 0, 7, proj)
        np.testing.assert_array_equal(subfile, [10, 0, 0, 0, 14, 0, 0, 0])

    def test_window_offsets(self):
        # Gather a window that does not start at 0: coordinates are
        # relative to lo.
        proj = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 0, 4)
        buf = np.arange(100, 112, dtype=np.uint8)  # holds offsets 100..111
        out = np.empty(6, dtype=np.uint8)
        gather(out, buf, 100, 111, proj)
        np.testing.assert_array_equal(out, [100, 101, 104, 105, 108, 109])
