"""Tests for the parallel and windowed (out-of-core) executors, and
Fortran-order distributions."""

import numpy as np
import pytest

from repro import matrix_partition, round_robin
from repro.distributions import Block, Cyclic, Replicated, multidim_partition
from repro.redistribution import build_plan, collect, distribute
from repro.redistribution.executor import execute_plan, execute_plan_windowed


@pytest.fixture(scope="module")
def case():
    n = 64
    data = np.random.default_rng(4).integers(0, 256, n * n, dtype=np.uint8)
    src_p = matrix_partition("c", n, n, 4)
    dst_p = matrix_partition("b", n, n, 4)
    plan = build_plan(src_p, dst_p)
    return data, src_p, dst_p, plan


class TestParallelExecutor:
    def test_matches_serial(self, case):
        data, src_p, dst_p, plan = case
        src = distribute(data, src_p)
        serial = execute_plan(plan, src, data.size)
        threaded = execute_plan(plan, src, data.size, parallel=True)
        for a, b in zip(serial, threaded):
            np.testing.assert_array_equal(a, b)

    def test_worker_cap(self, case):
        data, src_p, dst_p, plan = case
        src = distribute(data, src_p)
        out = execute_plan(plan, src, data.size, parallel=True, max_workers=2)
        np.testing.assert_array_equal(collect(out, dst_p, data.size), data)

    def test_parallel_identity_plan(self):
        p = round_robin(4, 16)
        data = np.arange(128, dtype=np.uint8)
        out = execute_plan(
            build_plan(p, p), distribute(data, p), data.size, parallel=True
        )
        np.testing.assert_array_equal(collect(out, p, data.size), data)


class TestWindowedExecutor:
    @pytest.mark.parametrize("window", [1, 7, 64, 1000, 10**6])
    def test_matches_unwindowed(self, case, window):
        data, src_p, dst_p, plan = case
        src = distribute(data, src_p)
        want = execute_plan(plan, src, data.size)
        got = execute_plan_windowed(plan, src, data.size, window)
        for a, b in zip(want, got):
            np.testing.assert_array_equal(a, b)

    def test_partial_trailing_period(self):
        src_p = round_robin(3, 5)
        dst_p = round_robin(2, 4)
        length = 97  # ragged against both patterns
        data = np.random.default_rng(5).integers(0, 256, length, dtype=np.uint8)
        src = distribute(data, src_p)
        plan = build_plan(src_p, dst_p)
        want = execute_plan(plan, src, length)
        got = execute_plan_windowed(plan, src, length, 13)
        for a, b in zip(want, got):
            np.testing.assert_array_equal(a, b)

    def test_window_validation(self, case):
        data, src_p, _, plan = case
        with pytest.raises(ValueError):
            execute_plan_windowed(plan, distribute(data, src_p), data.size, 0)


class TestFortranOrder:
    def test_f_order_equals_reversed_c(self):
        shape = (6, 8)
        f = multidim_partition(
            shape, 1, (Block(), Replicated()), (2, 1), order="F"
        )
        c = multidim_partition(
            shape[::-1], 1, (Replicated(), Block()), (1, 2), order="C"
        )
        assert f.elements == c.elements

    def test_f_order_column_block_is_contiguous(self):
        # In Fortran order a *column* block of a matrix is contiguous.
        p = multidim_partition(
            (8, 8), 1, (Replicated(), Block()), (1, 4), order="F"
        )
        for e in p.elements:
            assert e.is_contiguous()

    def test_oracle(self):
        import itertools

        shape, grid = (4, 6), (2, 3)
        p = multidim_partition(
            shape, 2, (Cyclic(), Block()), grid, order="F"
        )
        # Oracle: element (i,j) owns rows i mod 2, column block j - in
        # F-order byte layout.
        arr = np.arange(4 * 6 * 2, dtype=np.int64).reshape(4, 6, 2)
        fbytes = np.ascontiguousarray(arr.transpose(1, 0, 2)).reshape(-1)
        from repro.core.indexset import falls_set_indices

        for rank, (i, j) in enumerate(itertools.product(range(2), range(3))):
            rows = [r for r in range(4) if r % 2 == i]
            cols = [c for c in range(6) if c // 2 == j]
            want = sorted(
                int(v)
                for r in rows
                for c in cols
                for v in arr[r, c]
            )
            got_positions = falls_set_indices(p.elements[rank].falls)
            got = sorted(int(fbytes[x]) for x in got_positions)
            assert got == want

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            multidim_partition((4, 4), 1, (Block(), Block()), (2, 2), order="X")
