"""Regression test: cached plans share one executor process-wide, and
its gather scratch must not be shared between threads.

Before the fix, ``PlanExecutor._scratch`` was a plain dict on the
executor attached to the (process-wide cached) plan: two threads
executing the same plan concurrently gathered into the *same* scratch
buffer and scattered each other's bytes.  The scratch is now
``threading.local``; this test drives the exact racing shape and checks
every thread's output against the serial result.
"""

import threading

import numpy as np

from repro import matrix_partition
from repro.redistribution import distribute
from repro.redistribution.executor import execute_plan
from repro.redistribution.plan_cache import clear_plan_cache, get_plan


def _case(seed):
    n = 48
    data = np.random.default_rng(seed).integers(0, 256, n * n, dtype=np.uint8)
    src_p = matrix_partition("c", n, n, 4)
    dst_p = matrix_partition("b", n, n, 4)
    return data, src_p, dst_p


class TestSharedPlanScratchRace:
    def test_concurrent_execute_on_one_cached_plan(self):
        clear_plan_cache()
        data, src_p, dst_p = _case(11)
        plan = get_plan(src_p, dst_p)
        assert get_plan(src_p, dst_p) is plan  # genuinely shared object

        # Per-thread distinct payloads: if any thread's gather scratch is
        # overwritten by a neighbour, its scattered bytes come from the
        # wrong payload and the comparison below fails.
        n_threads = 8
        reps = 20
        payloads = [
            np.random.default_rng(100 + i).integers(
                0, 256, data.size, dtype=np.uint8
            )
            for i in range(n_threads)
        ]
        sources = [distribute(p, src_p) for p in payloads]
        expected = [execute_plan(plan, s, data.size) for s in sources]

        barrier = threading.Barrier(n_threads)
        failures = []

        def worker(i):
            src = sources[i]
            want = expected[i]
            barrier.wait()
            for _ in range(reps):
                got = execute_plan(plan, src, data.size)
                for a, b in zip(want, got):
                    if not np.array_equal(a, b):
                        failures.append(i)
                        return

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, f"threads {sorted(set(failures))} saw corrupt bytes"

    def test_scratch_is_thread_local(self):
        """The executor hands different threads different scratch buffers
        for the same transfer key."""
        data, src_p, dst_p = _case(12)
        plan = get_plan(src_p, dst_p)
        from repro.redistribution.executor import _executor_for

        ex = _executor_for(plan)
        main_buf = ex._gather_scratch((0, 0), 64)
        seen = {}

        def other():
            seen["buf"] = ex._gather_scratch((0, 0), 64)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert seen["buf"] is not main_buf
        # Same thread, same key: the buffer is reused (the amortisation win).
        assert ex._gather_scratch((0, 0), 32) is main_buf
