"""Documentation stays executable: every Python snippet in the tutorial
and the README quick-start must actually run against the current API."""

import contextlib
import io
import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), "..")


def _snippets(path):
    text = open(os.path.join(ROOT, path)).read()
    return re.findall(r"```python\n(.*?)```", text, re.S)


class TestTutorial:
    def test_all_snippets_run_in_order(self):
        code = "\n".join(_snippets("docs/TUTORIAL.md"))
        assert code.strip(), "tutorial lost its code blocks?"
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            exec(compile(code, "TUTORIAL.md", "exec"), {})
        # The figure-1 rendering appears in the captured output.
        assert "###...###" in buf.getvalue()


class TestReadme:
    def test_quickstart_snippet_runs(self):
        snippets = _snippets("README.md")
        assert snippets, "README lost its code blocks?"
        # The first snippet is the redistribution quick start and is
        # fully self-contained.
        exec(compile(snippets[0], "README.md", "exec"), {})

    def test_clusterfile_snippet_runs_with_stub(self):
        snippets = _snippets("README.md")
        # The second snippet references a data_of(...) placeholder.
        import numpy as np

        ns = {"data_of": lambda c: np.zeros(256 * 256 // 4, dtype=np.uint8)}
        exec(compile(snippets[1], "README.md", "exec"), ns)

    def test_example_table_matches_files(self):
        text = open(os.path.join(ROOT, "README.md")).read()
        for name in re.findall(r"\| `(\w+\.py)` \|", text):
            assert os.path.exists(
                os.path.join(ROOT, "examples", name)
            ), f"README references missing example {name}"


class TestCrossReferences:
    def test_design_modules_exist(self):
        """Every module path DESIGN.md's inventory names must exist."""
        text = open(os.path.join(ROOT, "DESIGN.md")).read()
        for mod in re.findall(r"`((?:core|distributions|redistribution|"
                              r"simulation|clusterfile|apps|bench)/\w+\.py)`",
                              text):
            assert os.path.exists(
                os.path.join(ROOT, "src", "repro", mod)
            ), f"DESIGN.md references missing module {mod}"

    def test_experiments_benchmarks_exist(self):
        text = open(os.path.join(ROOT, "EXPERIMENTS.md")).read()
        for bench in re.findall(r"`(bench_\w+\.py)`", text):
            assert os.path.exists(
                os.path.join(ROOT, "benchmarks", bench)
            ), f"EXPERIMENTS.md references missing benchmark {bench}"
