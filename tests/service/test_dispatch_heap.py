"""Regression tests for the heap-backed ready-file dispatcher.

The dispatcher used to scan every ready file per dispatch (O(ready
files)); it now keeps a min-heap keyed by ``(wfq_finish, wfq_start,
file_id)`` with lazy invalidation.  These tests pin the property the
heap must preserve — of all ready files' *heads*, the smallest WFQ key
dispatches first — using the same deterministically stalled service as
the tenant tests, but across enough files that the heap actually has
to order something.
"""

import numpy as np

import pytest

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.service import FileService

from .test_tenants import NPROCS, _StalledService, _payload


def _deployment(files):
    fs = Clusterfile()
    for name in files:
        fs.create(name, round_robin(NPROCS, 8))
        for node in range(NPROCS):
            fs.set_view(name, node, round_robin(NPROCS, 8))
    return fs


HEAVY_FILES = [f"heavy-{i}" for i in range(3)]
LIGHT_FILES = [f"light-{i}" for i in range(3)]


@pytest.fixture
def stalled():
    fs = _deployment(["blocked"] + HEAVY_FILES + LIGHT_FILES)
    svc = FileService(
        fs,
        workers=1,
        max_queue=256,
        admission="park",
        max_batch=1,
        tenant_weights={"heavy": 3.0, "light": 1.0},
    )
    stall = _StalledService(svc)
    yield stall
    stall.release()
    svc.close()


class TestHeapOrder:
    def test_equal_weight_heads_dispatch_in_admission_order(self, stalled):
        """One op per file, equal weight, admitted from one thread:
        WFQ tags are strictly increasing with admission, so the heap
        must release the files in exactly admission order — any
        heap-key or invalidation bug shows up as a permutation."""
        svc = stalled.svc
        svc.set_tenant("heavy", weight=1.0)
        names = [HEAVY_FILES[i % 3] if i % 2 else LIGHT_FILES[i % 3]
                 for i in range(12)]
        # Every op goes to a distinct (file, position) — heads only.
        tickets = []
        for i, name in enumerate(names):
            tenant = "heavy" if name.startswith("heavy") else "light"
            tickets.append(
                svc.submit_write(name, 0, 0, _payload(i), tenant=tenant)
            )
        stalled.release()
        assert svc.drain(timeout=60)
        # Global admission order: ticket identity order must match.
        order = stalled.backlog_order()
        assert order == tickets
        for t in tickets:
            assert t.exception(timeout=5) is None

    def test_weighted_share_across_many_files(self, stalled):
        """The 3:1 tenant share must hold when each tenant's backlog is
        spread over several files (several live heap entries per
        tenant), not just one queue each."""
        svc = stalled.svc
        heavy = [
            svc.submit_write(
                HEAVY_FILES[i % 3], 0, 0, _payload(i), tenant="heavy"
            )
            for i in range(9)
        ]
        light = [
            svc.submit_write(
                LIGHT_FILES[i % 3], 0, 0, _payload(i), tenant="light"
            )
            for i in range(3)
        ]
        stalled.release()
        assert svc.drain(timeout=60)
        order = stalled.backlog_order()
        assert len(order) == 12
        first8 = [t.tenant for t in order[:8]]
        assert first8.count("heavy") == 6
        assert first8.count("light") == 2
        # Per-file FIFO must survive the heap: seqs on any single file
        # dispatch in admission order.
        for name in HEAVY_FILES + LIGHT_FILES:
            seqs = [t.seq for t in order if t.file == name]
            assert seqs == sorted(seqs)
        for t in heavy + light:
            assert t.exception(timeout=5) is None

    def test_file_with_backlog_is_requeued_not_lost(self, stalled):
        """After a dispatch the file's remaining backlog must get a
        fresh heap entry — a file must never strand queued ops."""
        svc = stalled.svc
        tickets = [
            svc.submit_write("heavy-0", 0, 0, _payload(i), tenant="heavy")
            for i in range(5)
        ]
        tickets += [
            svc.submit_write("light-0", 0, 0, _payload(i), tenant="light")
            for i in range(5)
        ]
        stalled.release()
        assert svc.drain(timeout=60)
        assert len(stalled.backlog_order()) == 10
        for t in tickets:
            assert t.exception(timeout=5) is None


class TestHeapInvalidation:
    def test_lingered_batches_leave_no_stale_dispatch(self):
        """With a linger window, queued ops are stolen into in-flight
        batches after the file was already re-pushed — the heap entry
        goes stale (or its queue drains).  All ops must still resolve
        exactly once and the bytes must match a serial run."""
        names = [f"f{i}" for i in range(4)]
        fs = _deployment(names)
        svc = FileService(
            fs, workers=2, max_queue=256, max_batch=4,
            batch_window_s=0.003,
        )
        rng = np.random.default_rng(7)
        oracle = _deployment(names)
        tickets = []
        try:
            for i in range(120):
                name = names[int(rng.integers(len(names)))]
                off = int(rng.integers(0, 48))
                payload = rng.integers(1, 255, size=8, dtype=np.uint8)
                oracle.write(name, [(0, off, payload)])
                tickets.append(svc.submit_write(name, 0, off, payload))
            assert svc.drain(timeout=60)
        finally:
            svc.close()
        for t in tickets:
            assert t.exception(timeout=5) is None
        for name in names:
            got = fs.linear_contents(name, 64)
            want = oracle.linear_contents(name, 64)
            assert np.array_equal(got, want), name

    def test_queue_depth_returns_to_zero(self):
        """Lazy invalidation must not leak phantom ready entries that
        keep the dispatcher spinning or miscount the queue."""
        fs = _deployment(["a", "b"])
        svc = FileService(fs, workers=1, max_batch=2)
        try:
            ts = [
                svc.submit_write("a" if i % 2 else "b", 0, 0, _payload(i))
                for i in range(20)
            ]
            assert svc.drain(timeout=60)
            assert svc.queue_depth == 0
            for t in ts:
                assert t.exception(timeout=5) is None
        finally:
            svc.close()
