"""Ticket-linked tracing: reconstructing one request's cross-thread
timeline (admission -> dispatcher -> worker -> engine) from its trace id."""

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.service import FileService, render_timeline, request_timeline
from repro.service.tickets import Ticket
from repro.simulation.cluster import ClusterConfig

NPROCS = 4
CHUNK = 64


def _make_fs():
    fs = Clusterfile(ClusterConfig())
    fs.create("f", round_robin(NPROCS, CHUNK))
    for node in range(NPROCS):
        fs.set_view("f", node, round_robin(NPROCS, CHUNK))
    return fs


def _payload(seed=0):
    return np.random.default_rng(seed).integers(
        0, 256, CHUNK, dtype=np.uint8
    )


class TestTraceIds:
    def test_every_ticket_gets_a_unique_trace_id(self):
        fs = _make_fs()
        with FileService(fs, workers=1, max_queue=8) as svc:
            t1 = svc.submit_write("f", 0, 0, _payload())
            t2 = svc.submit_write("f", 1, 0, _payload())
            svc.drain(timeout=30)
        assert t1.trace_id != t2.trace_id
        assert t1.trace_id.startswith("op-")

    def test_timeline_before_dispatch_raises(self):
        t = Ticket(kind="write", file="f", seq=0)
        with pytest.raises(ValueError, match="no trace"):
            request_timeline(t)


class TestCrossThreadTimeline:
    def test_threaded_run_reconstructs_full_timeline(self):
        """The acceptance criterion: submit from this thread, dispatch
        on the dispatcher thread, execute on a worker thread — then
        rebuild the whole request path from the ticket's trace id."""
        fs = _make_fs()
        tickets = []
        with FileService(
            fs, workers=3, max_queue=64, max_batch=4
        ) as svc:
            for i in range(24):
                tickets.append(
                    svc.submit_write("f", i % NPROCS, 0, _payload(i))
                )
            assert svc.drain(timeout=60)

        for ticket in tickets:
            tl = request_timeline(ticket)
            assert tl["trace_id"] == ticket.trace_id
            names = [st["stage"] for st in tl["stages"]]
            # The full causal chain, in order: service-side waits, then
            # the engine op, then its per-stage breakdown.
            assert names[0] == "queue_wait"
            assert names[1] == "lock_acquire"
            assert names[2] == "engine.write"
            assert set(names[3:]) == {
                "engine.write.map",
                "engine.write.gather",
                "engine.write.scatter",
                "engine.write.transport",
            }
            assert all(st["wall_s"] >= 0.0 for st in tl["stages"])
            # The engine root was bound to the *head* ticket's trace id
            # (the batch rode one engine call), which is the batch id.
            engine = tl["stages"][2]
            assert engine["trace_id"] == tl["batch"]["trace_id"]
            assert tl["batch"]["size"] >= 1

    def test_batched_followers_keep_their_own_trace_ids(self):
        fs = _make_fs()
        with FileService(fs, workers=1, max_queue=64, max_batch=8) as svc:
            tickets = [
                svc.submit_write("f", i % NPROCS, 0, _payload(i))
                for i in range(8)
            ]
            assert svc.drain(timeout=60)
        batched = [t for t in tickets if t.batched_with > 0]
        assert batched, "expected at least one coalesced batch"
        for t in batched:
            tl = request_timeline(t)
            # Followers keep per-request queue_wait/lock_acquire records
            # under their own ids, inside the head's batch span.
            assert tl["trace_id"] == t.trace_id
            assert {"queue_wait", "lock_acquire"} <= {
                st["stage"] for st in tl["stages"]
            }

    def test_read_timeline_has_read_stages(self):
        fs = _make_fs()
        with FileService(fs, workers=2, max_queue=8) as svc:
            svc.submit_write("f", 0, 0, _payload()).result(timeout=30)
            t = svc.submit_read("f", 0, 0, CHUNK)
            t.result(timeout=30)
        names = [st["stage"] for st in request_timeline(t)["stages"]]
        assert "engine.read" in names
        assert "engine.read.map" in names

    def test_wait_s_matches_service_records(self):
        fs = _make_fs()
        with FileService(fs, workers=1, max_queue=8) as svc:
            t = svc.submit_write("f", 0, 0, _payload())
            assert svc.drain(timeout=30)
        tl = request_timeline(t)
        waits = {
            st["stage"]: st["wall_s"] for st in tl["stages"][:2]
        }
        # queue_wait + lock_acquire is the ticket's measured wait.
        assert waits["queue_wait"] + waits["lock_acquire"] == (
            pytest.approx(t.wait_s, abs=5e-3)
        )


class TestRendering:
    def test_render_timeline_mentions_every_stage(self):
        fs = _make_fs()
        with FileService(fs, workers=1, max_queue=8) as svc:
            t = svc.submit_write("f", 0, 0, _payload())
            assert svc.drain(timeout=30)
        text = render_timeline(request_timeline(t))
        assert t.trace_id in text
        for stage in ("queue_wait", "lock_acquire", "engine.write.map"):
            assert stage in text
