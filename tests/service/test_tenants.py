"""Multi-tenant admission: per-tenant quotas and weighted fair queueing.

The tests pin the scheduler deterministically instead of sampling
throughput: the single dispatcher is stalled by parking one file's
lock (an externally held writer ticket blocks the worker, a second
dispatched operation soaks the only worker slot), a backlog is
admitted from one thread (so WFQ tags are fixed and reproducible), and
the dispatch order is recorded by wrapping the worker pool's
``submit``.  Releasing the lock then replays the backlog in exactly
the order the WFQ policy chose.
"""

import threading

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.obs import metrics as obs_metrics
from repro.service import FileService, ServiceOverloaded

NPROCS = 2
CHUNK = 8


def _deployment(files):
    fs = Clusterfile()
    for name in files:
        fs.create(name, round_robin(NPROCS, CHUNK))
        for node in range(NPROCS):
            fs.set_view(name, node, round_robin(NPROCS, CHUNK))
    return fs


def _payload(i):
    return np.full(4, i % 256, dtype=np.uint8)


class _StalledService:
    """A FileService with its dispatcher deterministically parked.

    ``workers=1``: one operation on the blocked file occupies the
    worker (blocked on the externally held lock), a second occupies
    the dispatcher (blocked acquiring the worker slot).  Everything
    admitted afterwards stays queued until :meth:`release`.
    """

    def __init__(self, svc, blocked_file="blocked"):
        self.svc = svc
        self.blocked_file = blocked_file
        self.dispatch_order = []
        self._guard = threading.Lock()
        # Prime the file state, then hold its write lock externally.
        svc.submit_write(blocked_file, 0, 0, _payload(0)).result(timeout=30)
        self._hold = svc._files[blocked_file].lock.acquire("w")
        # Record dispatch order from here on.
        self._orig_submit = svc._pool.submit

        def recording_submit(fn, fstate, batch, lticket):
            with self._guard:
                self.dispatch_order.extend(op.ticket for op in batch)
            return self._orig_submit(fn, fstate, batch, lticket)

        svc._pool.submit = recording_submit
        # Soak the worker and the dispatcher.
        self._soak = [
            svc.submit_write(blocked_file, 0, 0, _payload(1)),
            svc.submit_write(blocked_file, 0, 0, _payload(2)),
        ]
        self._wait_stalled()

    def _wait_stalled(self):
        deadline = 30.0
        step = 0.005
        waited = 0.0
        while self.svc.queue_depth > 0 and waited < deadline:
            threading.Event().wait(step)
            waited += step
        assert self.svc.queue_depth == 0, "dispatcher never stalled"

    def release(self):
        if self._hold is not None:
            self.svc._files[self.blocked_file].lock.release(self._hold)
            self._hold = None

    def backlog_order(self):
        """Dispatched tickets, excluding the blocked-file machinery."""
        return [t for t in self.dispatch_order if t.file != self.blocked_file]


@pytest.fixture
def stalled():
    files = ["blocked", "heavy-file", "light-file"]
    fs = _deployment(files)
    svc = FileService(
        fs,
        workers=1,
        max_queue=64,
        admission="park",
        max_batch=1,  # one dispatch per operation: order fully visible
        tenant_weights={"heavy": 3.0, "light": 1.0},
    )
    stall = _StalledService(svc)
    yield stall
    stall.release()
    svc.close()


class TestWeightedFairQueueing:
    def test_dispatch_share_tracks_weights(self, stalled):
        """Under a saturated backlog, a weight-3 tenant receives three
        dispatch slots for every one a weight-1 tenant gets."""
        svc = stalled.svc
        heavy = [
            svc.submit_write("heavy-file", 0, 0, _payload(i), tenant="heavy")
            for i in range(9)
        ]
        light = [
            svc.submit_write("light-file", 0, 0, _payload(i), tenant="light")
            for i in range(3)
        ]
        stalled.release()
        assert svc.drain(timeout=60)

        order = stalled.backlog_order()
        assert len(order) == 12
        first8 = [t.tenant for t in order[:8]]
        assert first8.count("heavy") == 6
        assert first8.count("light") == 2

        # Within each tenant, per-file admission order held.
        heavy_seqs = [t.seq for t in order if t.tenant == "heavy"]
        light_seqs = [t.seq for t in order if t.tenant == "light"]
        assert heavy_seqs == sorted(heavy_seqs)
        assert light_seqs == sorted(light_seqs)
        for t in heavy + light:
            assert t.exception(timeout=5) is None

    def test_equal_weights_interleave(self, stalled):
        """With the same weight, two saturating tenants alternate."""
        svc = stalled.svc
        svc.set_tenant("heavy", weight=1.0)
        a = [
            svc.submit_write("heavy-file", 0, 0, _payload(i), tenant="heavy")
            for i in range(4)
        ]
        b = [
            svc.submit_write("light-file", 0, 0, _payload(i), tenant="light")
            for i in range(4)
        ]
        stalled.release()
        assert svc.drain(timeout=60)

        tenants = [t.tenant for t in stalled.backlog_order()]
        assert len(tenants) == 8
        # No tenant ever gets two consecutive slots ahead of a queued
        # peer with an equal weight.
        for i in range(0, 8, 2):
            assert set(tenants[i:i + 2]) == {"heavy", "light"}
        for t in a + b:
            assert t.exception(timeout=5) is None


class TestTenantQuota:
    def test_quota_rejects_one_tenant_only(self):
        files = ["blocked", "heavy-file", "light-file"]
        fs = _deployment(files)
        obs_metrics.reset_metrics("service.tenant")
        svc = FileService(
            fs, workers=1, max_queue=64, admission="reject", max_batch=1
        )
        stall = _StalledService(svc)
        try:
            # Quota on the greedy tenant only — the stall machinery's
            # default-tenant ops and other tenants stay unconstrained.
            svc.set_tenant("greedy", quota=2)
            greedy = [
                svc.submit_write(
                    "heavy-file", 0, 0, _payload(i), tenant="greedy"
                )
                for i in range(2)
            ]
            with pytest.raises(ServiceOverloaded):
                svc.submit_write(
                    "heavy-file", 0, 0, _payload(9), tenant="greedy"
                )
            # The global queue has room: another tenant still admits.
            polite = svc.submit_write(
                "light-file", 0, 0, _payload(0), tenant="polite"
            )
            stats = svc.tenant_stats()
            assert stats["greedy"]["queued"] == 2
            assert stats["polite"]["queued"] == 1
            counts = obs_metrics.snapshot("service.tenant")
            assert counts["service.tenant.greedy.rejected"] == 1
            assert counts.get("service.tenant.polite.rejected", 0) == 0
        finally:
            stall.release()
            assert svc.drain(timeout=60)
            svc.close()
        for t in greedy + [polite]:
            assert t.exception(timeout=5) is None

    def test_set_tenant_raises_quota_live(self):
        files = ["blocked", "heavy-file"]
        fs = _deployment(files)
        svc = FileService(
            fs, workers=1, max_queue=64, admission="reject", max_batch=1
        )
        stall = _StalledService(svc)
        try:
            svc.set_tenant("t", quota=1)
            svc.submit_write("heavy-file", 0, 0, _payload(0), tenant="t")
            with pytest.raises(ServiceOverloaded):
                svc.submit_write("heavy-file", 0, 0, _payload(1), tenant="t")
            svc.set_tenant("t", quota=3)
            svc.submit_write("heavy-file", 0, 0, _payload(1), tenant="t")
            assert svc.tenant_stats()["t"]["queued"] == 2
        finally:
            stall.release()
            assert svc.drain(timeout=60)
            svc.close()

    def test_quota_validation(self):
        fs = _deployment(["f"])
        with pytest.raises(ValueError):
            FileService(fs, tenant_quota=0)
        svc = FileService(fs)
        try:
            with pytest.raises(ValueError):
                svc.set_tenant("t", weight=0.0)
            with pytest.raises(ValueError):
                svc.set_tenant("t", quota=0)
        finally:
            svc.close()
