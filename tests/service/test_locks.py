"""FairRWLock semantics: FIFO order, shared readers, exclusive writers."""

import threading
import time

import pytest

from repro.service import FairRWLock


class TestGrantPolicy:
    def test_single_writer_grants_immediately(self):
        lock = FairRWLock()
        t = lock.register("w")
        assert t.granted
        lock.release(t)

    def test_readers_share(self):
        lock = FairRWLock()
        r1 = lock.register("r")
        r2 = lock.register("r")
        assert r1.granted and r2.granted
        assert lock.active_count == 2
        lock.release(r1)
        lock.release(r2)

    def test_writer_waits_for_readers(self):
        lock = FairRWLock()
        r1 = lock.register("r")
        r2 = lock.register("r")
        w = lock.register("w")
        assert not w.granted
        lock.release(r1)
        assert not w.granted  # one reader still active
        lock.release(r2)
        assert w.granted
        lock.release(w)

    def test_writers_serialize_fifo(self):
        lock = FairRWLock()
        w1 = lock.register("w")
        w2 = lock.register("w")
        w3 = lock.register("w")
        assert w1.granted and not w2.granted and not w3.granted
        lock.release(w1)
        assert w2.granted and not w3.granted
        lock.release(w2)
        assert w3.granted
        lock.release(w3)

    def test_readers_queue_behind_waiting_writer(self):
        """A reader arriving after a waiting writer must not jump it
        (no writer starvation)."""
        lock = FairRWLock()
        r1 = lock.register("r")
        w = lock.register("w")
        r2 = lock.register("r")
        assert r1.granted and not w.granted and not r2.granted
        lock.release(r1)
        assert w.granted and not r2.granted
        lock.release(w)
        assert r2.granted
        lock.release(r2)

    def test_reader_run_grants_together_after_writer(self):
        lock = FairRWLock()
        w = lock.register("w")
        r1 = lock.register("r")
        r2 = lock.register("r")
        lock.release(w)
        assert r1.granted and r2.granted

    def test_bad_mode_rejected(self):
        lock = FairRWLock()
        with pytest.raises(ValueError):
            lock.register("x")


class TestThreaded:
    def test_exclusive_section_never_overlaps(self):
        lock = FairRWLock()
        active = []
        overlaps = []
        guard = threading.Lock()

        def writer(i):
            t = lock.acquire("w")
            with guard:
                if active:
                    overlaps.append(i)
                active.append(i)
            time.sleep(0.001)
            with guard:
                active.remove(i)
            lock.release(t)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not overlaps

    def test_registration_order_is_execution_order(self):
        """Tickets registered from one thread execute in that order even
        when waited on by racing threads."""
        lock = FairRWLock()
        tickets = [lock.register("w") for _ in range(12)]
        order = []
        guard = threading.Lock()

        def run(i, ticket):
            lock.wait(ticket)
            with guard:
                order.append(i)
            lock.release(ticket)

        threads = [
            threading.Thread(target=run, args=(i, t))
            for i, t in enumerate(tickets)
        ]
        # Start in reverse to make out-of-order wakeup likely if the
        # lock were unfair.
        for t in reversed(threads):
            t.start()
        for t in threads:
            t.join()
        assert order == list(range(12))


class TestFairnessProperties:
    """Starvation-freedom and FIFO properties, probed with
    ``wait(ticket, timeout=)``: a ``False`` return is a *bounded*
    observation that the ticket is still queued (no grant yet), so the
    tests can assert both sides — who must be granted and who must
    not — without sleeping for luck."""

    def test_writer_not_starved_by_continuous_reader_stream(self):
        """A writer behind one reader is granted as soon as that reader
        drains, even while new readers keep arriving: the arrivals
        queue *behind* the writer instead of piling onto the shared
        grant."""
        lock = FairRWLock()
        first = lock.register("r")
        writer = lock.register("w")

        stop = threading.Event()
        granted_before_writer = []

        def reader_stream():
            while not stop.is_set():
                t = lock.register("r")
                if lock.wait(t, timeout=0.001):
                    # Only possible once the writer has come and gone.
                    if not writer.granted:
                        granted_before_writer.append(t)
                    lock.release(t)
                else:
                    # Still queued behind the writer: wait it out for
                    # real, then release.
                    lock.wait(t)
                    if not writer.granted:
                        granted_before_writer.append(t)
                    lock.release(t)

        streams = [
            threading.Thread(target=reader_stream, daemon=True)
            for _ in range(4)
        ]
        for t in streams:
            t.start()
        try:
            # The stream alone never unblocks the writer...
            assert not lock.wait(writer, timeout=0.05)
            # ...and draining the pre-writer reader does, promptly,
            # regardless of how many readers arrived meanwhile.
            lock.release(first)
            assert lock.wait(writer, timeout=5.0)
            assert not granted_before_writer
            lock.release(writer)
        finally:
            stop.set()
            for t in streams:
                t.join(timeout=5)

    def test_fifo_order_among_waiting_writers(self):
        """Same-mode waiters are granted strictly in registration
        order; wait(timeout=) observes each intermediate state."""
        lock = FairRWLock()
        holder = lock.register("w")
        writers = [lock.register("w") for _ in range(4)]
        assert all(not w.granted for w in writers)
        lock.release(holder)
        for i, w in enumerate(writers):
            assert lock.wait(w, timeout=5.0), f"writer {i} never granted"
            for later in writers[i + 1:]:
                assert not lock.wait(later, timeout=0.01), (
                    f"writer after {i} granted out of FIFO order"
                )
            lock.release(w)

    def test_fifo_order_among_reader_batches(self):
        """Readers split by a writer are granted batch by batch in
        registration order, never merged across the writer."""
        lock = FairRWLock()
        holder = lock.register("w")
        early = [lock.register("r") for _ in range(3)]
        mid_writer = lock.register("w")
        late = [lock.register("r") for _ in range(3)]

        lock.release(holder)
        for r in early:
            assert lock.wait(r, timeout=5.0)
        assert not lock.wait(mid_writer, timeout=0.01)
        assert all(not lock.wait(r, timeout=0.01) for r in late)

        for r in early:
            lock.release(r)
        assert lock.wait(mid_writer, timeout=5.0)
        assert all(not lock.wait(r, timeout=0.01) for r in late)

        lock.release(mid_writer)
        for r in late:
            assert lock.wait(r, timeout=5.0)
            lock.release(r)

    def test_wait_timeout_leaves_ticket_queued(self):
        """A timed-out wait is an observation, not a cancellation: the
        ticket keeps its place and is granted later."""
        lock = FairRWLock()
        holder = lock.register("w")
        waiter = lock.register("w")
        assert not lock.wait(waiter, timeout=0.01)
        assert lock.waiting_count == 1
        lock.release(holder)
        assert lock.wait(waiter, timeout=5.0)
        lock.release(waiter)
