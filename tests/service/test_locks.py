"""FairRWLock semantics: FIFO order, shared readers, exclusive writers."""

import threading
import time

import pytest

from repro.service import FairRWLock


class TestGrantPolicy:
    def test_single_writer_grants_immediately(self):
        lock = FairRWLock()
        t = lock.register("w")
        assert t.granted
        lock.release(t)

    def test_readers_share(self):
        lock = FairRWLock()
        r1 = lock.register("r")
        r2 = lock.register("r")
        assert r1.granted and r2.granted
        assert lock.active_count == 2
        lock.release(r1)
        lock.release(r2)

    def test_writer_waits_for_readers(self):
        lock = FairRWLock()
        r1 = lock.register("r")
        r2 = lock.register("r")
        w = lock.register("w")
        assert not w.granted
        lock.release(r1)
        assert not w.granted  # one reader still active
        lock.release(r2)
        assert w.granted
        lock.release(w)

    def test_writers_serialize_fifo(self):
        lock = FairRWLock()
        w1 = lock.register("w")
        w2 = lock.register("w")
        w3 = lock.register("w")
        assert w1.granted and not w2.granted and not w3.granted
        lock.release(w1)
        assert w2.granted and not w3.granted
        lock.release(w2)
        assert w3.granted
        lock.release(w3)

    def test_readers_queue_behind_waiting_writer(self):
        """A reader arriving after a waiting writer must not jump it
        (no writer starvation)."""
        lock = FairRWLock()
        r1 = lock.register("r")
        w = lock.register("w")
        r2 = lock.register("r")
        assert r1.granted and not w.granted and not r2.granted
        lock.release(r1)
        assert w.granted and not r2.granted
        lock.release(w)
        assert r2.granted
        lock.release(r2)

    def test_reader_run_grants_together_after_writer(self):
        lock = FairRWLock()
        w = lock.register("w")
        r1 = lock.register("r")
        r2 = lock.register("r")
        lock.release(w)
        assert r1.granted and r2.granted

    def test_bad_mode_rejected(self):
        lock = FairRWLock()
        with pytest.raises(ValueError):
            lock.register("x")


class TestThreaded:
    def test_exclusive_section_never_overlaps(self):
        lock = FairRWLock()
        active = []
        overlaps = []
        guard = threading.Lock()

        def writer(i):
            t = lock.acquire("w")
            with guard:
                if active:
                    overlaps.append(i)
                active.append(i)
            time.sleep(0.001)
            with guard:
                active.remove(i)
            lock.release(t)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not overlaps

    def test_registration_order_is_execution_order(self):
        """Tickets registered from one thread execute in that order even
        when waited on by racing threads."""
        lock = FairRWLock()
        tickets = [lock.register("w") for _ in range(12)]
        order = []
        guard = threading.Lock()

        def run(i, ticket):
            lock.wait(ticket)
            with guard:
                order.append(i)
            lock.release(ticket)

        threads = [
            threading.Thread(target=run, args=(i, t))
            for i, t in enumerate(tickets)
        ]
        # Start in reverse to make out-of-order wakeup likely if the
        # lock were unfair.
        for t in reversed(threads):
            t.start()
        for t in threads:
            t.join()
        assert order == list(range(12))
