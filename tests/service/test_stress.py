"""Concurrency stress: many client threads against one deployment.

The service's contract is that concurrency never changes *what* is
computed, only *when*: operations on one file execute in that file's
admission order, so every file's final bytes — and every individual
read result — must equal a *per-file* serial replay of its admitted
sequence on a fresh deployment.  Sequence numbers are total per file
and deliberately unordered across files, so the tests key every record
by ``(file, seq)`` and assert contiguity file by file.

Two workloads here:

* a mixed write/read/relayout storm over two files sharing clients
  (contention mode — exercises same-file ordering under cross-file
  interleaving);
* 8 client threads over 8 *independent* files (sharding mode — proves
  the no-serialization invariant: the cross-file lock-conflict counter
  stays exactly 0 while every file still matches its serial replay).

Both reconcile the ``service.*`` metrics totals against per-operation
sums from the tickets.
"""

import threading
from collections import defaultdict

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.clusterfile.relayout import relayout
from repro.distributions import round_robin
from repro.obs import metrics as obs_metrics
from repro.service import FileService

NPROCS = 4
CHUNK = 16
FILES = ("alpha", "beta")
LAYOUTS = (round_robin(NPROCS, CHUNK), round_robin(2, 2 * CHUNK))


def _deployment(files=FILES):
    fs = Clusterfile()
    for name in files:
        fs.create(name, LAYOUTS[0])
        for node in range(NPROCS):
            fs.set_view(name, node, round_robin(NPROCS, CHUNK))
    return fs


def _client_ops(seed, n_ops, files=FILES, relayouts=True):
    """One client's operation stream (generated, not yet submitted)."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(n_ops):
        name = files[int(rng.integers(len(files)))]
        node = int(rng.integers(NPROCS))
        roll = rng.random()
        if roll < 0.62 or (not relayouts and roll >= 0.92):
            off = int(rng.integers(0, 160))
            data = rng.integers(0, 256, int(rng.integers(1, 48)), dtype=np.uint8)
            ops.append(("write", name, node, off, data))
        elif roll < 0.92:
            off = int(rng.integers(0, 160))
            length = int(rng.integers(1, 48))
            ops.append(("read", name, node, off, length))
        else:
            layout = LAYOUTS[int(rng.integers(len(LAYOUTS)))]
            ops.append(("relayout", name, layout))
    return ops


def _replay_serially(records, files=FILES):
    """Apply each file's admitted sequence, in per-file seq order, on a
    fresh deployment (files are independent, so replay order across
    files is immaterial), mimicking the service's relayout view
    re-establishment."""
    fs = _deployment(files)
    read_results = {}
    by_file = defaultdict(list)
    for (name, seq), op in records.items():
        by_file[name].append((seq, op))
    for name, seq_ops in by_file.items():
        for seq, op in sorted(seq_ops):
            kind = op[0]
            if kind == "write":
                _, name, node, off, data = op
                fs.write(name, [(node, off, data)])
            elif kind == "read":
                _, name, node, off, length = op
                [buf] = fs.read(name, [(node, off, length)])
                read_results[(name, seq)] = buf
            else:
                _, name, layout = op
                saved = [
                    (node, v.logical, v.element)
                    for (n, node), v in list(fs.views.items())
                    if n == name
                ]
                relayout(fs, name, layout)
                for node, logical, element in saved:
                    fs.set_view(name, node, logical, element)
    return fs, read_results


def _run_storm(fs, svc, n_threads, ops_per_thread, seed, files, relayouts=True):
    """Drive the workload; returns records/tickets keyed by (file, seq)."""
    records = {}
    tickets = {}
    guard = threading.Lock()
    start = threading.Barrier(n_threads)

    def client(i):
        start.wait()
        client_files = files if relayouts else (files[i % len(files)],)
        for op in _client_ops(
            1000 * seed + i, ops_per_thread, client_files, relayouts
        ):
            if op[0] == "write":
                _, name, node, off, data = op
                t = svc.submit_write(name, node, off, data)
            elif op[0] == "read":
                _, name, node, off, length = op
                t = svc.submit_read(name, node, off, length)
            else:
                _, name, layout = op
                t = svc.submit_relayout(name, layout)
            with guard:
                records[(t.file, t.seq)] = op
                tickets[(t.file, t.seq)] = t

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert svc.drain(timeout=120)
    return records, tickets


def _assert_per_file_contiguity(records, total):
    assert len(records) == total
    # Per file, sequence numbers are a total order: exactly 0..n-1 with
    # no gaps or duplicates.  (Across files they are incomparable.)
    per_file = defaultdict(list)
    for name, seq in records:
        per_file[name].append(seq)
    for name, seqs in per_file.items():
        assert sorted(seqs) == list(range(len(seqs))), (
            f"per-file sequence of {name!r} is not contiguous"
        )
    assert sum(len(s) for s in per_file.values()) == total


def _assert_replay_identical(fs, records, tickets, files):
    replay_fs, replay_reads = _replay_serially(records, files)
    for name in files:
        np.testing.assert_array_equal(
            fs.linear_contents(name),
            replay_fs.linear_contents(name),
            err_msg=f"final bytes of {name!r} diverge from serial replay",
        )
    for key, want in replay_reads.items():
        got = tickets[key].result(timeout=5)
        np.testing.assert_array_equal(
            got, want, err_msg=f"read {key} diverges from serial replay"
        )


def _assert_metrics_reconcile(records, tickets, total, max_queue):
    counts = obs_metrics.snapshot("service")
    gauges = obs_metrics.get_registry().gauges("service")
    n_writes = sum(1 for op in records.values() if op[0] == "write")
    assert counts["service.enqueued"] == total
    assert counts["service.completed"] == total
    assert counts.get("service.failed", 0) == 0
    assert counts.get("service.rejected", 0) == 0
    # Every write rode in exactly one engine batch.
    assert gauges["service.batch_size"]["sum"] == n_writes
    assert counts["service.batches"] == gauges["service.batch_size"]["count"]
    # Wait time and queue depth were sampled once per operation.
    assert gauges["service.wait_s"]["count"] == total
    assert gauges["service.queue_depth"]["count"] == total
    assert gauges["service.queue_depth"]["max"] <= max_queue
    # Ticket-side per-op facts agree with the registry aggregates.
    write_tickets = [
        tickets[key] for key, op in records.items() if op[0] == "write"
    ]
    assert sum(1.0 / t.batched_with for t in write_tickets) == pytest.approx(
        counts["service.batches"]
    )
    assert sum(t.wait_s for t in tickets.values()) == pytest.approx(
        gauges["service.wait_s"]["sum"]
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_stress_mixed_workload_equals_serial_replay(seed):
    obs_metrics.reset_metrics("service")
    n_threads = 8
    ops_per_thread = 20
    fs = _deployment()

    with FileService(
        fs, workers=8, max_queue=32, admission="park", max_batch=8
    ) as svc:
        records, tickets = _run_storm(
            fs, svc, n_threads, ops_per_thread, seed, FILES
        )

    total = n_threads * ops_per_thread
    _assert_per_file_contiguity(records, total)

    failures = {
        key: t.exception(timeout=5)
        for key, t in tickets.items()
        if t.exception(timeout=5) is not None
    }
    assert not failures, f"operations failed: {failures}"

    _assert_replay_identical(fs, records, tickets, FILES)
    _assert_metrics_reconcile(records, tickets, total, max_queue=32)


@pytest.mark.parametrize("seed", [0, 1])
def test_stress_independent_files_no_cross_file_conflicts(seed):
    """8 threads over 8 independent files: every file byte-identical to
    its own serial replay, and the cross-file lock-conflict counter —
    incremented whenever a blocked worker finds an active holder tagged
    with a *different* file — stays exactly 0.  Per-file locks make
    cross-file blocking structurally impossible; this pins it."""
    obs_metrics.reset_metrics("service")
    n_threads = 8
    ops_per_thread = 12
    files = tuple(f"shard{i}" for i in range(8))
    fs = _deployment(files)

    with FileService(
        fs, workers=8, max_queue=64, admission="park", max_batch=8
    ) as svc:
        # relayouts=False also pins each thread to one file, making the
        # workload genuinely independent across threads.
        records, tickets = _run_storm(
            fs, svc, n_threads, ops_per_thread, seed, files, relayouts=False
        )
        file_ids = {t.file_id for t in tickets.values()}
        assert len(file_ids) == len(files)

    total = n_threads * ops_per_thread
    _assert_per_file_contiguity(records, total)
    for key, t in tickets.items():
        assert t.exception(timeout=5) is None, f"operation {key} failed"

    _assert_replay_identical(fs, records, tickets, files)

    counts = obs_metrics.snapshot("service")
    assert counts.get("service.lock.cross_file_conflicts", 0) == 0
    assert counts["service.completed"] == total
