"""Concurrency stress: many client threads against one deployment.

The service's contract is that concurrency never changes *what* is
computed, only *when*: operations on one file execute in admission
order, so the final file bytes — and every individual read result —
must equal a serial replay of the admitted sequence on a fresh
deployment.  This test drives >= 8 client threads issuing a mixed
write/read/relayout workload through an 8-worker service, records the
admission order from the tickets, replays it serially, and compares
byte-for-byte.  It also reconciles the ``service.*`` metrics totals
against per-operation sums from the tickets.
"""

import threading

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.clusterfile.relayout import relayout
from repro.distributions import round_robin
from repro.obs import metrics as obs_metrics
from repro.service import FileService

NPROCS = 4
CHUNK = 16
FILES = ("alpha", "beta")
LAYOUTS = (round_robin(NPROCS, CHUNK), round_robin(2, 2 * CHUNK))


def _deployment():
    fs = Clusterfile()
    for name in FILES:
        fs.create(name, LAYOUTS[0])
        for node in range(NPROCS):
            fs.set_view(name, node, round_robin(NPROCS, CHUNK))
    return fs


def _client_ops(seed, n_ops):
    """One client's operation stream (generated, not yet submitted)."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(n_ops):
        name = FILES[int(rng.integers(len(FILES)))]
        node = int(rng.integers(NPROCS))
        roll = rng.random()
        if roll < 0.62:
            off = int(rng.integers(0, 160))
            data = rng.integers(0, 256, int(rng.integers(1, 48)), dtype=np.uint8)
            ops.append(("write", name, node, off, data))
        elif roll < 0.92:
            off = int(rng.integers(0, 160))
            length = int(rng.integers(1, 48))
            ops.append(("read", name, node, off, length))
        else:
            layout = LAYOUTS[int(rng.integers(len(LAYOUTS)))]
            ops.append(("relayout", name, layout))
    return ops


def _replay_serially(records):
    """Apply the admitted sequence on a fresh deployment, mimicking the
    service's relayout view re-establishment."""
    fs = _deployment()
    read_results = {}
    for seq, op in sorted(records.items()):
        kind = op[0]
        if kind == "write":
            _, name, node, off, data = op
            fs.write(name, [(node, off, data)])
        elif kind == "read":
            _, name, node, off, length = op
            [buf] = fs.read(name, [(node, off, length)])
            read_results[seq] = buf
        else:
            _, name, layout = op
            saved = [
                (node, v.logical, v.element)
                for (n, node), v in list(fs.views.items())
                if n == name
            ]
            relayout(fs, name, layout)
            for node, logical, element in saved:
                fs.set_view(name, node, logical, element)
    return fs, read_results


@pytest.mark.parametrize("seed", [0, 1])
def test_stress_mixed_workload_equals_serial_replay(seed):
    obs_metrics.reset_metrics("service")
    n_threads = 8
    ops_per_thread = 20
    fs = _deployment()

    records = {}  # admission seq -> op tuple
    tickets = {}
    guard = threading.Lock()
    start = threading.Barrier(n_threads)

    with FileService(
        fs, workers=8, max_queue=32, admission="park", max_batch=8
    ) as svc:

        def client(i):
            start.wait()
            for op in _client_ops(1000 * seed + i, ops_per_thread):
                if op[0] == "write":
                    _, name, node, off, data = op
                    t = svc.submit_write(name, node, off, data)
                elif op[0] == "read":
                    _, name, node, off, length = op
                    t = svc.submit_read(name, node, off, length)
                else:
                    _, name, layout = op
                    t = svc.submit_relayout(name, layout)
                with guard:
                    records[t.seq] = op
                    tickets[t.seq] = t

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert svc.drain(timeout=120)

    total = n_threads * ops_per_thread
    assert len(records) == total
    # Admission sequence numbers are the service-wide total order and
    # must be exactly 0..total-1 with no gaps or duplicates.
    assert sorted(records) == list(range(total))

    failures = {
        seq: t.exception(timeout=5)
        for seq, t in tickets.items()
        if t.exception(timeout=5) is not None
    }
    assert not failures, f"operations failed: {failures}"

    # -- byte equivalence against the serial replay ----------------------
    replay_fs, replay_reads = _replay_serially(records)
    for name in FILES:
        np.testing.assert_array_equal(
            fs.linear_contents(name),
            replay_fs.linear_contents(name),
            err_msg=f"final bytes of {name!r} diverge from serial replay",
        )
    for seq, want in replay_reads.items():
        got = tickets[seq].result(timeout=5)
        np.testing.assert_array_equal(
            got, want, err_msg=f"read #{seq} diverges from serial replay"
        )

    # -- metrics integrity under contention ------------------------------
    counts = obs_metrics.snapshot("service")
    gauges = obs_metrics.get_registry().gauges("service")
    n_writes = sum(1 for op in records.values() if op[0] == "write")
    assert counts["service.enqueued"] == total
    assert counts["service.completed"] == total
    assert counts.get("service.failed", 0) == 0
    assert counts.get("service.rejected", 0) == 0
    # Every write rode in exactly one engine batch.
    assert gauges["service.batch_size"]["sum"] == n_writes
    assert counts["service.batches"] == gauges["service.batch_size"]["count"]
    # Wait time and queue depth were sampled once per operation.
    assert gauges["service.wait_s"]["count"] == total
    assert gauges["service.queue_depth"]["count"] == total
    assert gauges["service.queue_depth"]["max"] <= 32
    # Ticket-side per-op facts agree with the registry aggregates.
    write_tickets = [
        tickets[seq] for seq, op in records.items() if op[0] == "write"
    ]
    assert sum(1.0 / t.batched_with for t in write_tickets) == pytest.approx(
        counts["service.batches"]
    )
    assert sum(t.wait_s for t in tickets.values()) == pytest.approx(
        gauges["service.wait_s"]["sum"]
    )
