"""FileService behaviour: determinism, batching, admission control,
failure propagation, relayout view re-establishment."""

import threading

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.obs import metrics as obs_metrics
from repro.service import FileService, ServiceClosed, ServiceOverloaded


def _deployment(nprocs=4, chunk=16):
    fs = Clusterfile()
    fs.create("f", round_robin(nprocs, chunk))
    for node in range(nprocs):
        fs.set_view("f", node, round_robin(nprocs, chunk))
    return fs


def _payloads(seed, nprocs=4, nbytes=64):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, nbytes, dtype=np.uint8) for _ in range(nprocs)]


class TestSingleWorkerDeterminism:
    def test_byte_identical_to_serial_engine(self):
        """workers=1, max_batch=1: the service IS the serial engine."""
        data = _payloads(7)
        fs_serial = _deployment()
        for n, buf in enumerate(data):
            fs_serial.write("f", [(n, 0, buf)])

        fs_svc = _deployment()
        with FileService(fs_svc, workers=1, max_batch=1) as svc:
            for n, buf in enumerate(data):
                svc.submit_write("f", n, 0, buf)
            assert svc.drain(timeout=30)
        np.testing.assert_array_equal(
            fs_svc.linear_contents("f"), fs_serial.linear_contents("f")
        )

    def test_batched_equals_unbatched(self):
        data = _payloads(8)
        fs_a = _deployment()
        with FileService(fs_a, workers=1, max_batch=1) as svc:
            for n, buf in enumerate(data):
                svc.submit_write("f", n, 0, buf)
            assert svc.drain(timeout=30)
        fs_b = _deployment()
        with FileService(fs_b, workers=1, max_batch=8) as svc:
            tickets = [
                svc.submit_write("f", n, 0, buf)
                for n, buf in enumerate(data)
            ]
            assert svc.drain(timeout=30)
        np.testing.assert_array_equal(
            fs_a.linear_contents("f"), fs_b.linear_contents("f")
        )
        # At least some coalescing happened (all four were queued
        # before the worker got to them, or in the worst case the first
        # dispatched alone and the remaining three rode together).
        assert max(t.batched_with for t in tickets) >= 2

    def test_read_sees_admitted_writes(self):
        fs = _deployment()
        data = _payloads(9)
        with FileService(fs, workers=2, max_batch=4) as svc:
            for n, buf in enumerate(data):
                svc.submit_write("f", n, 0, buf)
            t = svc.submit_read("f", 2, 0, data[2].size)
            got = t.result(timeout=30)
        np.testing.assert_array_equal(got, data[2])


class TestBatching:
    def test_one_engine_call_for_a_coalesced_run(self):
        obs_metrics.reset_metrics("service")
        fs = _deployment()
        data = _payloads(10)
        with FileService(fs, workers=1, max_batch=4) as svc:
            # Stall the worker with a first op so the rest pile up.
            svc.submit_write("f", 0, 0, data[0])
            tickets = [
                svc.submit_write("f", n, 0, data[n]) for n in range(1, 4)
            ]
            assert svc.drain(timeout=30)
        assert all(t.result(timeout=5) is not None for t in tickets)
        counts = obs_metrics.snapshot("service")
        assert counts["service.completed"] == 4
        # 4 ops went through at most 4 (typically 2) engine calls.
        assert counts["service.batches"] <= 4
        sizes = obs_metrics.get_registry().gauges("service")[
            "service.batch_size"
        ]
        assert sizes["sum"] == 4  # every write counted exactly once

    def test_duplicate_compute_node_breaks_batch(self):
        """The engine takes one request per compute node per call, so a
        run with a repeated node must split."""
        fs = _deployment()
        data = _payloads(11)
        with FileService(fs, workers=1, max_batch=8) as svc:
            svc.submit_write("f", 0, 0, data[0])
            t1 = svc.submit_write("f", 1, 0, data[1])
            t2 = svc.submit_write("f", 1, 0, data[2])  # same node again
            assert svc.drain(timeout=30)
        assert t1.result(timeout=5) is not None
        assert t2.result(timeout=5) is not None
        # Last write wins on the overlapping range.
        got = fs.read("f", [(1, 0, data[2].size)])[0]
        np.testing.assert_array_equal(got, data[2])

    def test_batch_window_waits_for_stragglers(self):
        fs = _deployment()
        data = _payloads(12)
        with FileService(
            fs, workers=1, max_batch=4, batch_window_s=0.25
        ) as svc:
            t0 = svc.submit_write("f", 0, 0, data[0])

            def late():
                svc.submit_write("f", 1, 0, data[1])

            timer = threading.Timer(0.05, late)
            timer.start()
            assert svc.drain(timeout=30)
            timer.join()
        # The straggler landed in the lingering batch.
        assert t0.batched_with == 2


class TestAdmissionControl:
    def test_reject_when_full(self):
        obs_metrics.reset_metrics("service")
        fs = _deployment()
        data = _payloads(13)
        svc = FileService(
            fs, workers=1, max_queue=2, admission="reject", max_batch=1
        )
        try:
            # Pause the dispatcher by keeping the only worker busy.
            blocker = threading.Event()
            orig_write = fs.write

            def slow_write(*a, **k):
                blocker.wait(5)
                return orig_write(*a, **k)

            fs.write = slow_write
            svc.submit_write("f", 0, 0, data[0])  # occupies the worker
            import time

            time.sleep(0.05)  # let the dispatcher take it
            svc.submit_write("f", 1, 0, data[1])
            svc.submit_write("f", 2, 0, data[2])
            with pytest.raises(ServiceOverloaded):
                svc.submit_write("f", 3, 0, data[3])
            blocker.set()
            assert svc.drain(timeout=30)
        finally:
            blocker.set()
            svc.close()
            fs.write = orig_write
        assert obs_metrics.snapshot("service")["service.rejected"] == 1

    def test_park_blocks_then_admits(self):
        fs = _deployment()
        data = _payloads(14)
        with FileService(
            fs, workers=2, max_queue=2, admission="park", max_batch=1
        ) as svc:
            tickets = [
                svc.submit_write("f", n % 4, 0, data[n % 4])
                for n in range(12)
            ]
            assert svc.drain(timeout=30)
            assert all(t.done() for t in tickets)

    def test_closed_service_rejects(self):
        fs = _deployment()
        svc = FileService(fs, workers=1)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit_read("f", 0, 0, 1)


class TestFailures:
    def test_missing_view_fails_only_that_ticket(self):
        fs = _deployment()
        data = _payloads(15)
        with FileService(fs, workers=1, max_batch=1) as svc:
            bad = svc.submit_write("f", 0, 0, data[0])
            fs.views.pop(("f", 0))
            good_node_data = data[1]
            good = svc.submit_write("f", 1, 0, good_node_data)
            assert svc.drain(timeout=30)
        # The bad ticket may or may not fail depending on whether the
        # dispatcher grabbed it before the view vanished; the good one
        # must always succeed.
        assert good.exception(timeout=5) is None

    def test_unknown_file_raises_via_ticket(self):
        fs = _deployment()
        with FileService(fs, workers=1) as svc:
            t = svc.submit_read("nope", 0, 0, 4)
            with pytest.raises(KeyError):
                t.result(timeout=30)


class TestRelayout:
    def test_relayout_preserves_bytes_and_views(self):
        fs = _deployment()
        data = _payloads(16)
        with FileService(fs, workers=2, max_batch=4) as svc:
            for n, buf in enumerate(data):
                svc.submit_write("f", n, 0, buf)
            before = None
            t = svc.submit_relayout("f", round_robin(2, 32))
            res = t.result(timeout=30)
            assert res.bytes_moved > 0
            # Views were re-established: a read through the old view
            # node still works and sees the same bytes.
            got = svc.submit_read("f", 3, 0, data[3].size).result(timeout=30)
            assert svc.drain(timeout=30)
        np.testing.assert_array_equal(got, data[3])
        assert fs.open("f").physical == round_robin(2, 32)
