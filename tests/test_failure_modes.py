"""Cross-module failure-mode and edge-case tests.

A library is defined as much by what it rejects as by what it accepts:
these tests pin down the error behaviour at module boundaries — corrupt
inputs, boundary sizes, degenerate structures — so refactors cannot
silently turn hard errors into wrong answers.
"""

import numpy as np
import pytest

from repro import (
    Falls,
    FallsSet,
    MappingError,
    Partition,
    PartitionError,
    PeriodicFallsSet,
    build_plan,
    collect,
    distribute,
    execute_plan,
    map_offset,
    round_robin,
    unmap_offset,
)
from repro.clusterfile import Clusterfile, WriteRequest
from repro.clusterfile.storage import FileBackedStore, FileStorage
from repro.simulation import ClusterConfig
from repro.simulation.events import EventQueue


@pytest.fixture(params=["memory", "file"])
def make_fs(request, tmp_path):
    """A Clusterfile factory over both storage backends — every edge
    behaviour must hold whether subfiles live in memory or on disk."""

    def _make(config=None):
        storage = (
            FileStorage(str(tmp_path / "subfiles"))
            if request.param == "file"
            else None
        )
        return Clusterfile(config or ClusterConfig(), storage=storage)

    return _make


class TestDegenerateStructures:
    def test_single_byte_file(self):
        p = Partition([Falls(0, 0, 1, 1)])
        assert p.size == 1
        assert map_offset(p, 0, 0) == 0
        data = np.array([42], dtype=np.uint8)
        assert collect(distribute(data, p), p, 1).tolist() == [42]

    def test_single_byte_elements(self):
        p = round_robin(8, 1)
        data = np.arange(64, dtype=np.uint8)
        buffers = distribute(data, p)
        assert all(b.size == 8 for b in buffers)
        np.testing.assert_array_equal(collect(buffers, p, 64), data)

    def test_maximally_nested_tree(self):
        f = Falls(0, 15, 16, 1)
        for _ in range(6):
            f = Falls(0, f.extent_stop, f.extent_stop + 1, 1, (f,))
        assert f.height() == 7
        assert f.size() == 16

    def test_huge_stride_tiny_blocks(self):
        f = Falls(0, 0, 1_000_000, 3)
        assert f.size() == 3
        assert f.extent_stop == 2_000_000
        segs = list(f.leaf_segments())
        assert [s.start for s in segs] == [0, 1_000_000, 2_000_000]

    def test_empty_redistribution(self):
        p = round_robin(2, 4)
        out = execute_plan(build_plan(p, p), [np.empty(0, np.uint8)] * 2, 0)
        assert all(b.size == 0 for b in out)


class TestMappingBoundaries:
    def test_offset_zero(self):
        p = round_robin(3, 5)
        assert map_offset(p, 0, 0) == 0
        assert unmap_offset(p, 0, 0) == 0

    def test_last_byte_of_period(self):
        p = round_robin(3, 5)
        assert map_offset(p, 2, 14) == 4
        assert unmap_offset(p, 2, 4) == 14

    def test_mode_validation_at_boundaries(self):
        p = Partition([Falls(0, 1, 4, 1), Falls(2, 3, 4, 1)], displacement=5)
        # First byte of element 1 in the whole file is offset 7.
        assert map_offset(p, 1, 0, mode="next") == 0
        with pytest.raises(MappingError):
            map_offset(p, 1, 6, mode="prev")
        assert map_offset(p, 1, 7, mode="prev") == 0

    def test_very_large_offsets(self):
        p = round_robin(4, 1024)
        x = 10**12
        y = map_offset(p, 2, x, mode="next")
        assert unmap_offset(p, 2, y) >= x
        assert map_offset(p, 2, unmap_offset(p, 2, y)) == y


class TestClusterfileEdges:
    def test_zero_byte_interval_rejected(self, make_fs):
        fs = make_fs()
        fs.create("f", round_robin(4, 4))
        fs.set_view("f", 0, round_robin(4, 4))
        with pytest.raises(ValueError):
            WriteRequest(fs.view_of("f", 0), 5, 4, np.zeros(0, np.uint8))

    def test_buffer_interval_mismatch_rejected(self, make_fs):
        fs = make_fs()
        fs.create("f", round_robin(4, 4))
        v = fs.set_view("f", 0, round_robin(4, 4))
        with pytest.raises(ValueError):
            WriteRequest(v, 0, 9, np.zeros(5, np.uint8))

    def test_non_uint8_buffer_rejected(self, make_fs):
        fs = make_fs()
        fs.create("f", round_robin(4, 4))
        v = fs.set_view("f", 0, round_robin(4, 4))
        with pytest.raises(ValueError, match="uint8"):
            WriteRequest(v, 0, 4, np.zeros(4, np.float32))

    def test_non_contiguous_buffer_rejected(self, make_fs):
        fs = make_fs()
        fs.create("f", round_robin(4, 4))
        v = fs.set_view("f", 0, round_robin(4, 4))
        with pytest.raises(ValueError, match="contiguous"):
            WriteRequest(v, 0, 4, np.zeros(8, np.uint8)[::2])

    def test_single_byte_write(self, make_fs):
        fs = make_fs()
        fs.create("f", round_robin(4, 4))
        fs.set_view("f", 1, round_robin(4, 4))
        fs.write("f", [(1, 7, np.array([99], dtype=np.uint8))])
        # View 1 byte 7: period 16, element bytes 4..7 per period;
        # byte 7 of the view = file offset 4+16=20... verify via read.
        got = fs.read("f", [(1, 7, 1)])[0]
        assert got.tolist() == [99]

    def test_write_far_beyond_current_length(self, make_fs):
        fs = make_fs()
        fs.create("f", round_robin(4, 4))
        fs.set_view("f", 0, round_robin(4, 4))
        fs.write("f", [(0, 10_000, np.array([1], dtype=np.uint8))])
        got = fs.read("f", [(0, 10_000, 1)])[0]
        assert got.tolist() == [1]

    def test_read_of_never_written_region_is_zero(self, make_fs):
        fs = make_fs()
        fs.create("f", round_robin(4, 4))
        fs.set_view("f", 2, round_robin(4, 4))
        got = fs.read("f", [(2, 0, 64)])[0]
        assert not got.any()

    def test_concurrent_disjoint_writes_to_same_subfile(self, make_fs):
        # Two compute nodes write different periods of the same element
        # via distinct views - must not corrupt each other.
        fs = make_fs(ClusterConfig(compute_nodes=2, io_nodes=1))
        fs.create("f", Partition([Falls(0, 7, 8, 1)]))
        whole = Partition([Falls(0, 7, 8, 1)])
        fs.set_view("f", 0, whole, element=0)
        fs.set_view("f", 1, whole, element=0)
        fs.write(
            "f",
            [
                (0, 0, np.full(8, 1, np.uint8)),
                (1, 8, np.full(8, 2, np.uint8)),
            ],
        )
        got = fs.linear_contents("f", 16)
        assert got[:8].tolist() == [1] * 8
        assert got[8:].tolist() == [2] * 8


class TestFileBackedDurability:
    """Crash/restart behaviour of the on-disk subfile backend."""

    def test_reopen_after_crash_preserves_bytes(self, tmp_path):
        path = str(tmp_path / "sub0")
        store = FileBackedStore(0, path)
        payload = np.arange(16, dtype=np.uint8)
        store.view(3, 18)[:] = payload
        store.flush(sync=True)
        store.close()
        # A "restarted" process maps the same file and sees the bytes.
        reopened = FileBackedStore(0, path)
        np.testing.assert_array_equal(reopened.read(3, 18), payload)

    def test_closed_store_stays_usable(self, tmp_path):
        # close() releases the memmap; the next access re-maps the
        # backing file instead of treating the store as empty.
        store = FileBackedStore(0, str(tmp_path / "sub0"))
        store.view(0, 15)[:] = np.arange(16, dtype=np.uint8)
        store.close()
        np.testing.assert_array_equal(
            store.read(0, 15), np.arange(16, dtype=np.uint8)
        )

    def test_small_write_after_reopen_does_not_truncate(self, tmp_path):
        store = FileBackedStore(0, str(tmp_path / "sub0"))
        store.view(0, 15)[:] = np.full(16, 7, np.uint8)
        store.close()
        reopened = FileBackedStore(0, str(tmp_path / "sub0"))
        reopened.view(0, 0)[:] = 1  # tiny write must not shrink the file
        got = reopened.read(0, 15)
        assert got[0] == 1
        assert got[1:].tolist() == [7] * 15

    def test_flush_sync_is_idempotent(self, tmp_path):
        store = FileBackedStore(0, str(tmp_path / "sub0"))
        store.flush(sync=True)  # nothing mapped yet: must not raise
        store.view(0, 3)[:] = 9
        store.flush(sync=True)
        store.flush(sync=True)
        store.close()
        store.close()

    def test_unlink_removes_backing_files_and_mirrors(self, tmp_path):
        root = tmp_path / "subfiles"
        fs = Clusterfile(ClusterConfig(), storage=FileStorage(str(root)))
        fs.create("f", round_robin(4, 4), replication=2)
        fs.set_view("f", 0, round_robin(4, 4))
        fs.write("f", [(0, 0, np.ones(4, np.uint8))], to_disk=True)
        assert any(root.iterdir())
        fs.unlink("f")
        assert not any(root.iterdir())


class TestEventQueueResumption:
    """run(until=...) pauses the clock without losing pending events —
    the property the engine's per-round retry timeline relies on."""

    def test_run_until_pauses_and_resumes(self):
        q = EventQueue()
        fired = []
        for t in (1.0, 2.0, 3.0):
            q.at(t, lambda t=t: fired.append(t))
        assert q.run(until=1.5) == 1.5
        assert fired == [1.0]
        assert q.pending == 2
        assert q.run() == 3.0
        assert fired == [1.0, 2.0, 3.0]

    def test_retransmit_scheduled_after_pause_lands_relative_to_now(self):
        q = EventQueue()
        fired = []
        q.at(1.0, lambda: fired.append("attempt"))
        q.at(3.0, lambda: fired.append("timeout"))
        assert q.run(until=2.0) == 2.0  # paused with the timeout pending
        # A retry scheduled mid-timeline is relative to the paused clock.
        q.schedule(0.5, lambda: fired.append("retry"))
        assert q.run() == pytest.approx(3.0)
        assert fired == ["attempt", "retry", "timeout"]


class TestPeriodicEdges:
    def test_window_entirely_before_displacement(self):
        pfs = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 100, 4)
        starts, _ = pfs.segments_in(0, 50)
        assert starts.size == 0
        assert pfs.count_in(0, 50) == 0

    def test_window_of_one_byte(self):
        pfs = PeriodicFallsSet(FallsSet([Falls(0, 1, 4, 1)]), 0, 4)
        assert pfs.count_in(4, 4) == 1
        assert pfs.count_in(2, 2) == 0

    def test_contiguous_run_none_for_fragments(self):
        pfs = PeriodicFallsSet(FallsSet([Falls(0, 0, 2, 4)]), 0, 8)
        assert pfs.contiguous_run_in(0, 7) is None
        assert pfs.contiguous_run_in(0, 0) == (0, 0)


class TestValidationMessages:
    """Errors must identify the offending structure."""

    def test_partition_gap_names_offset(self):
        with pytest.raises(PartitionError, match="gap after offset 1"):
            Partition([Falls(0, 1, 6, 1), Falls(4, 5, 6, 1)])

    def test_partition_overlap_names_offset(self):
        with pytest.raises(PartitionError, match="overlap near offset 2"):
            Partition([Falls(0, 3, 6, 1), Falls(2, 5, 6, 1)])

    def test_falls_stride_error_mentions_values(self):
        with pytest.raises(ValueError, match="stride 4 smaller than block length 8"):
            Falls(0, 7, 4, 2)

    def test_mapping_error_mentions_offset_and_element(self):
        p = round_robin(2, 4)
        with pytest.raises(MappingError, match="offset 4 does not map on element 0"):
            map_offset(p, 0, 4)
