"""Differential oracle: plans and the engine vs byte-at-a-time movement.

The real redistribution path computes FALLS intersections, builds
transfer schedules, and moves whole segments; the oracle moves one byte
at a time by asking both partitions who owns it.  On randomized
partition pairs (the acceptance bar is 200 of them) every executor
variant — plain, windowed, parallel — must produce the oracle's bytes
exactly.  A second differential drives the full Clusterfile engine:
writing every view element through the I/O pipeline must assemble the
file the naive mapping predicts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clusterfile.fs import Clusterfile
from repro.redistribution import build_plan, collect, distribute
from repro.redistribution.executor import (
    execute_plan,
    execute_plan_windowed,
)

from ..properties.strategies import any_partition
from .naive import (
    naive_collect,
    naive_distribute,
    naive_elements,
    naive_redistribute,
)

PAIR_SETTINGS = settings(max_examples=200, deadline=None)
ENGINE_SETTINGS = settings(max_examples=40, deadline=None)


@given(src=any_partition(), dst=any_partition(), data=st.data())
@PAIR_SETTINGS
def test_plan_execution_matches_per_byte_oracle(src, dst, data):
    file_length = data.draw(
        st.integers(1, 2 * max(src.size, dst.size) + src.displacement + 7),
        label="file_length",
    )
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="seed"))
    linear = rng.integers(0, 256, file_length, dtype=np.uint8)

    src_buffers = distribute(linear, src)
    want_src = naive_distribute(linear, src)
    for a, b in zip(src_buffers, want_src):
        np.testing.assert_array_equal(a, b)

    plan = build_plan(src, dst)
    want = naive_redistribute(src, dst, src_buffers, file_length)
    got = execute_plan(plan, src_buffers, file_length)
    assert len(got) == len(want)
    for e, (a, b) in enumerate(zip(got, want)):
        np.testing.assert_array_equal(
            a, b, err_msg=f"dst element {e} diverges from byte oracle"
        )

    window = data.draw(st.integers(1, file_length + 3), label="window")
    windowed = execute_plan_windowed(plan, src_buffers, file_length, window)
    for a, b in zip(windowed, want):
        np.testing.assert_array_equal(a, b)

    threaded = execute_plan(plan, src_buffers, file_length, parallel=True)
    for a, b in zip(threaded, want):
        np.testing.assert_array_equal(a, b)


@given(partition=any_partition(), data=st.data())
@PAIR_SETTINGS
def test_distribute_collect_match_byte_oracle(partition, data):
    file_length = data.draw(
        st.integers(1, 2 * partition.size + partition.displacement + 7),
        label="file_length",
    )
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="seed"))
    linear = rng.integers(0, 256, file_length, dtype=np.uint8)
    buffers = distribute(linear, partition)
    round_tripped = collect(buffers, partition, file_length)
    want = naive_collect(naive_distribute(linear, partition), partition, file_length)
    np.testing.assert_array_equal(round_tripped, want)
    # Bytes past the displacement survive the round trip untouched.
    np.testing.assert_array_equal(
        round_tripped[partition.displacement :],
        linear[partition.displacement :],
    )


@given(logical=any_partition(), physical=any_partition(), data=st.data())
@ENGINE_SETTINGS
def test_engine_write_assembles_the_oracle_file(logical, physical, data):
    """Write every view element fully through the I/O engine; the
    assembled file must be what the naive logical mapping predicts:
    byte x = payload[owner(x)][rank(x)] wherever both the logical and
    the physical pattern own x, zero elsewhere."""
    # Clusterfile supports at most io_nodes * 64 subfiles; the default
    # config has 4 I/O nodes, far above any drawn partition size.
    fs = Clusterfile()
    fs.create("f", physical)
    periods = data.draw(st.integers(1, 2), label="periods")
    file_length = logical.displacement + periods * logical.size
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="seed"))

    log_elements = naive_elements(logical)
    phys_elements = naive_elements(physical)
    payloads = []
    nodes = min(fs.config.compute_nodes, logical.num_elements)
    for e, el in enumerate(log_elements):
        payloads.append(
            rng.integers(
                0, 256, el.length_for(file_length), dtype=np.uint8
            )
        )
    # One engine call per view element (views beyond the compute-node
    # count reuse node slots across separate calls).
    for e, payload in enumerate(payloads):
        if payload.size == 0:
            continue
        node = e % fs.config.compute_nodes
        fs.set_view("f", node, logical, element=e)
        fs.write("f", [(node, 0, payload)])

    want = np.zeros(file_length, dtype=np.uint8)
    for x in range(file_length):
        owner = None
        for e, el in enumerate(log_elements):
            r = el.map(x)
            if r is not None:
                owner = (e, r)
                break
        if owner is None:
            continue  # before the logical displacement: never written
        if all(el.map(x) is None for el in phys_elements):
            continue  # no subfile stores this byte
        want[x] = payloads[owner[0]][owner[1]]

    got = fs.linear_contents("f", file_length)
    np.testing.assert_array_equal(got, want)
