"""Naive per-byte reference implementations of the paper's machinery.

Everything here is written for obviousness, not speed: FALLS membership
by recursive enumeration, MAP/MAP^-1 by linear scan over the enumerated
offsets, redistribution by moving one byte at a time.  The oracle tests
check the real implementations — segment algebra, binary-search MAP,
vectorised mappers, redistribution plans, the I/O engine — against
these on randomized partitions.  If the two ever disagree, the naive
side is the specification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.partition import Partition


def falls_offsets(f) -> List[int]:
    """Every pattern-relative offset selected by one (nested) FALLS,
    by direct enumeration of blocks and inner structures."""
    out: List[int] = []
    block = f.r - f.l + 1
    for k in range(f.n):
        base = f.l + k * f.s
        if f.is_leaf:
            out.extend(range(base, base + block))
        else:
            for g in f.inner:
                out.extend(base + o for o in falls_offsets(g))
    return out


class NaiveElement:
    """Linear-scan MAP / MAP^-1 for one partition element."""

    def __init__(self, partition: Partition, element: int):
        offsets: List[int] = []
        for f in partition.elements[element].falls:
            offsets.extend(falls_offsets(f))
        self.partition = partition
        self.element = element
        self.offsets = sorted(offsets)
        self.rank_of: Dict[int, int] = {
            o: i for i, o in enumerate(self.offsets)
        }
        self.size = len(self.offsets)

    def map(self, x: int) -> Optional[int]:
        """MAP_S(x): file offset -> element rank, None when ``x`` does
        not belong to the element."""
        p = self.partition
        if x < p.displacement:
            return None
        q, rem = divmod(x - p.displacement, p.size)
        i = self.rank_of.get(rem)
        if i is None:
            return None
        return q * self.size + i

    def map_next(self, x: int) -> int:
        """Rank of the first element byte at file offset >= x."""
        x = max(x, self.partition.displacement)
        while True:
            r = self.map(x)
            if r is not None:
                return r
            x += 1

    def map_prev(self, x: int) -> Optional[int]:
        """Rank of the last element byte at file offset <= x, or None
        when the element owns no byte that early."""
        while x >= self.partition.displacement:
            r = self.map(x)
            if r is not None:
                return r
            x -= 1
        return None

    def unmap(self, y: int) -> int:
        """MAP_S^{-1}(y): element rank -> file offset."""
        q, rem = divmod(y, self.size)
        return (
            self.partition.displacement
            + q * self.partition.size
            + self.offsets[rem]
        )

    def length_for(self, file_length: int) -> int:
        """Bytes of a ``file_length``-byte file owned by this element,
        counted one by one."""
        return sum(
            1 for x in range(file_length) if self.map(x) is not None
        )


def naive_elements(partition: Partition) -> List[NaiveElement]:
    return [
        NaiveElement(partition, e) for e in range(partition.num_elements)
    ]


def naive_owner(
    elements: Sequence[NaiveElement], x: int
) -> Optional[Tuple[int, int]]:
    """The ``(element, rank)`` pair owning file byte ``x``, or None for
    bytes before the displacement."""
    for e, el in enumerate(elements):
        r = el.map(x)
        if r is not None:
            return e, r
    return None


def naive_distribute(
    data: np.ndarray, partition: Partition
) -> List[np.ndarray]:
    """Split a linear file into per-element buffers, one byte at a time."""
    elements = naive_elements(partition)
    out = [
        np.zeros(el.length_for(data.size), dtype=np.uint8) for el in elements
    ]
    for x in range(data.size):
        owner = naive_owner(elements, x)
        if owner is not None:
            e, r = owner
            out[e][r] = data[x]
    return out


def naive_collect(
    buffers: Sequence[np.ndarray], partition: Partition, file_length: int
) -> np.ndarray:
    """Reassemble the linear file from per-element buffers, byte-wise."""
    elements = naive_elements(partition)
    data = np.zeros(file_length, dtype=np.uint8)
    for x in range(file_length):
        owner = naive_owner(elements, x)
        if owner is not None:
            e, r = owner
            data[x] = buffers[e][r]
    return data


def naive_redistribute(
    src: Partition,
    dst: Partition,
    src_buffers: Sequence[np.ndarray],
    file_length: int,
) -> List[np.ndarray]:
    """Move a file between two partitions one byte at a time.

    A byte moves when *both* partitions own it; bytes the destination
    owns but the source does not (displacement mismatch) stay zero,
    matching the plan executor's zero-initialised destination buffers.
    """
    src_elements = naive_elements(src)
    dst_elements = naive_elements(dst)
    out = [
        np.zeros(el.length_for(file_length), dtype=np.uint8)
        for el in dst_elements
    ]
    for x in range(file_length):
        s = naive_owner(src_elements, x)
        d = naive_owner(dst_elements, x)
        if s is None or d is None:
            continue
        out[d[0]][d[1]] = src_buffers[s[0]][s[1]]
    return out
