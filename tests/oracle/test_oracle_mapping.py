"""Differential oracle: real MAP/MAP^-1 vs the naive linear scan.

The real implementations locate offsets by binary search over FALLS
prefix sums and vectorise over per-period segment tables; the oracle
enumerates every selected byte and scans.  On randomized partitions
(contiguous, striped, and nested-FALLS shapes) the two must agree on
every offset, every rank, and every next/prev rounding — including the
"does not belong" cases, where the real side must raise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import (
    ElementMapper,
    MappingError,
    map_offset,
    unmap_offset,
)

from ..properties.strategies import any_partition
from .naive import NaiveElement, naive_elements, naive_owner

ORACLE_SETTINGS = settings(max_examples=200, deadline=None)


@given(partition=any_partition(), data=st.data())
@ORACLE_SETTINGS
def test_map_matches_linear_scan(partition, data):
    element = data.draw(
        st.integers(0, partition.num_elements - 1), label="element"
    )
    naive = NaiveElement(partition, element)
    span = partition.displacement + 2 * partition.size + 3
    for x in range(span):
        want = naive.map(x)
        if want is None:
            with pytest.raises(MappingError):
                map_offset(partition, element, x)
        else:
            assert map_offset(partition, element, x) == want


@given(partition=any_partition(), data=st.data())
@ORACLE_SETTINGS
def test_map_next_prev_match_linear_scan(partition, data):
    element = data.draw(
        st.integers(0, partition.num_elements - 1), label="element"
    )
    naive = NaiveElement(partition, element)
    span = partition.displacement + 2 * partition.size + 3
    for x in range(span):
        assert map_offset(partition, element, x, mode="next") == naive.map_next(x)
        want_prev = naive.map_prev(x)
        if want_prev is None:
            with pytest.raises(MappingError):
                map_offset(partition, element, x, mode="prev")
        else:
            assert (
                map_offset(partition, element, x, mode="prev") == want_prev
            )


@given(partition=any_partition(), data=st.data())
@ORACLE_SETTINGS
def test_unmap_matches_linear_scan(partition, data):
    element = data.draw(
        st.integers(0, partition.num_elements - 1), label="element"
    )
    naive = NaiveElement(partition, element)
    for y in range(2 * naive.size + 1):
        want = naive.unmap(y)
        assert unmap_offset(partition, element, y) == want
        # Round trip through the real MAP.
        assert map_offset(partition, element, want) == y


@given(partition=any_partition(), data=st.data())
@ORACLE_SETTINGS
def test_vectorised_mapper_matches_linear_scan(partition, data):
    element = data.draw(
        st.integers(0, partition.num_elements - 1), label="element"
    )
    naive = NaiveElement(partition, element)
    mapper = ElementMapper(partition, element)
    owned = [
        x
        for x in range(partition.displacement + 2 * partition.size)
        if naive.map(x) is not None
    ]
    if owned:
        xs = np.array(owned, dtype=np.int64)
        want = np.array([naive.map(x) for x in owned], dtype=np.int64)
        np.testing.assert_array_equal(mapper.map_many(xs), want)
        np.testing.assert_array_equal(mapper.unmap_many(want), xs)


@given(partition=any_partition())
@ORACLE_SETTINGS
def test_ownership_partitions_the_file(partition):
    """Every byte past the displacement is owned by exactly one element,
    and element_length agrees with the per-byte count."""
    elements = naive_elements(partition)
    file_length = partition.displacement + partition.size + 3
    for x in range(partition.displacement, file_length):
        owners = [e for e, el in enumerate(elements) if el.map(x) is not None]
        assert len(owners) == 1, f"byte {x} owned by {owners}"
        assert naive_owner(elements, x) is not None
    for e, el in enumerate(elements):
        assert partition.element_length(e, file_length) == el.length_for(
            file_length
        )
