"""Transport edge cases shared by all three transports.

Every transport must take the degenerate shapes in stride: zero-byte
segments, a node sending only to itself, and single-node exchanges.
The shared-memory transport additionally turns wire-level corruption
(truncated/garbage frames) and missing peers into a clean
:class:`TransportError` instead of a hang — those paths are exercised
here with plain threads as ranks, which works because all transport
state lives in shared memory.
"""

import threading

import numpy as np
import pytest

from repro.clusterfile.engine import (
    DirectTransport,
    SimMessage,
    SimulatedTransport,
)
from repro.mp.shm import TransportError
from repro.mp.transport import SharedMemoryTransport
from repro.simulation import Cluster, ClusterConfig
from repro.simulation.network import NetworkModel


def _threaded_exchange(transport, outboxes, timeout=30.0):
    """Run one alltoallv round with one thread per rank; returns the
    per-rank inboxes (or raises the first rank's error).

    Each non-creator rank attaches its own instance through the
    picklable handle — the barrier epoch is instance-local state, one
    instance per rank, exactly as worker processes do it.
    """
    n = transport.nprocs
    inboxes = [None] * n
    errors = []
    handle = transport.handle()

    def rank_main(r, inst):
        try:
            inboxes[r] = inst.alltoallv(r, outboxes[r], timeout=timeout)
        except Exception as e:  # noqa: BLE001 - surfaced below
            errors.append(e)
        finally:
            if inst is not transport:
                inst.close()

    threads = [
        threading.Thread(
            target=rank_main,
            args=(r, SharedMemoryTransport.from_handle(handle)),
        )
        for r in range(1, n)
    ]
    for t in threads:
        t.start()
    rank_main(0, transport)
    for t in threads:
        t.join(timeout=timeout + 10)
    if errors:
        raise errors[0]
    return inboxes


class TestSharedMemoryTransportEdges:
    def test_zero_byte_segments_cost_nothing(self):
        with_closing = SharedMemoryTransport(2, region_bytes=1 << 16)
        try:
            empty = np.empty(0, dtype=np.uint8)
            outboxes = [
                [(1, empty), (1, np.arange(4, dtype=np.uint8)), (0, empty)],
                [(0, empty)],
            ]
            inboxes = _threaded_exchange(with_closing, outboxes)
            assert inboxes[0][1].size == 0  # rank1 sent nothing real
            np.testing.assert_array_equal(
                inboxes[1][0], np.arange(4, dtype=np.uint8)
            )
            assert inboxes[1][1].size == 0
        finally:
            with_closing.close()

    def test_self_send_only(self):
        t = SharedMemoryTransport(2, region_bytes=1 << 16)
        try:
            data = np.arange(32, dtype=np.uint8)
            outboxes = [[(0, data)], []]
            inboxes = _threaded_exchange(t, outboxes)
            np.testing.assert_array_equal(inboxes[0][0], data)
            assert inboxes[0][1].size == 0
            assert all(b.size == 0 for b in inboxes[1])
        finally:
            t.close()

    def test_single_node_exchange_is_a_memcpy(self):
        t = SharedMemoryTransport(1, region_bytes=1 << 16)
        try:
            data = np.arange(64, dtype=np.uint8)
            (inbox,) = [t.alltoallv(0, [(0, data)])]
            np.testing.assert_array_equal(inbox[0], data)
        finally:
            t.close()

    def test_segment_order_is_senders_enqueue_order(self):
        t = SharedMemoryTransport(2, region_bytes=1 << 16)
        try:
            a = np.full(3, 1, dtype=np.uint8)
            b = np.full(5, 2, dtype=np.uint8)
            outboxes = [[(1, a), (1, b)], []]
            inboxes = _threaded_exchange(t, outboxes)
            np.testing.assert_array_equal(
                inboxes[1][0], np.concatenate([a, b])
            )
        finally:
            t.close()

    def test_overflowing_region_raises_cleanly(self):
        t = SharedMemoryTransport(1, region_bytes=1024)
        try:
            with pytest.raises(TransportError, match="send region"):
                t.alltoallv(0, [(0, np.zeros(4096, dtype=np.uint8))])
        finally:
            t.close()

    def test_missing_peer_times_out_not_hangs(self):
        t = SharedMemoryTransport(2, region_bytes=1 << 16)
        try:
            with pytest.raises(TransportError, match="timed out"):
                t.alltoallv(0, [], timeout=0.2)
        finally:
            t.close()

    def test_dead_peer_liveness_raises(self):
        t = SharedMemoryTransport(2, region_bytes=1 << 16)
        try:
            with pytest.raises(TransportError, match="peer died"):
                t.alltoallv(0, [], timeout=30.0, liveness=lambda: False)
        finally:
            t.close()


class TestSimulatedTransportEdges:
    def _msg(self, cluster, compute, io_node, nbytes):
        node = cluster.io[io_node]
        return SimMessage(
            key=compute,
            lane=("nic", compute),
            lane_s=0.0,
            stages=((node.cpu, nbytes * 1e-9, "bc"),),
        )

    def test_zero_byte_messages_complete(self):
        cluster = Cluster(ClusterConfig(compute_nodes=2, io_nodes=2))
        t = SimulatedTransport(cluster)
        done = t.run([self._msg(cluster, 0, 0, 0)])
        assert 0 in done.get("bc", {})

    def test_single_node_exchange(self):
        cluster = Cluster(ClusterConfig(compute_nodes=1, io_nodes=1))
        t = SimulatedTransport(cluster)
        done = t.run([self._msg(cluster, 0, 0, 256)])
        assert done["bc"][0] >= 0.0

    def test_empty_batch_is_fine(self):
        cluster = Cluster(ClusterConfig(compute_nodes=2, io_nodes=2))
        assert SimulatedTransport(cluster).run([]) == {}


class TestDirectTransportEdges:
    def test_zero_byte_moves_are_free(self):
        t = DirectTransport(NetworkModel())
        messages, off_node, time_s = t.cost([(0, 1, 0), (1, 2, 0)])
        assert (messages, off_node, time_s) == (0, 0, 0.0)

    def test_self_sends_stay_local(self):
        t = DirectTransport(NetworkModel())
        messages, off_node, time_s = t.cost([(3, 3, 4096)])
        assert messages == 0 and off_node == 0 and time_s == 0.0

    def test_single_element_exchange(self):
        t = DirectTransport(NetworkModel())
        messages, off_node, time_s = t.cost([(0, 1, 4096)])
        assert messages == 1 and off_node == 4096 and time_s > 0.0

    def test_no_network_model_moves_free_but_counted(self):
        messages, off_node, time_s = DirectTransport(None).cost([(0, 1, 64)])
        assert messages == 1 and off_node == 64 and time_s == 0.0
