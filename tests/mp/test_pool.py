"""The worker-process pool: lifecycle, ownership mapping, crash
semantics, and shared-memory hygiene.  A dead worker must surface as
:class:`WorkerCrashed` and tear the whole pool (and every one of its
segments) down — never a hang, never a leak."""

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.mp.pool import ProcessPoolExecutorBackend, WorkerCrashed
from repro.mp.shm import shm_segments_alive
from repro.simulation.cluster import ClusterConfig


def _write_read_roundtrip(fs, n_bytes=1024, nprocs=4, chunk=64):
    fs.create("f", round_robin(nprocs, chunk))
    rng = np.random.default_rng(7)
    data = {n: rng.integers(0, 256, n_bytes, dtype=np.uint8)
            for n in range(nprocs)}
    for n in range(nprocs):
        fs.set_view("f", n, round_robin(nprocs, chunk), element=n)
    fs.write("f", [(n, 0, data[n]) for n in range(nprocs)], to_disk=True)
    out = fs.read("f", [(n, 0, n_bytes) for n in range(nprocs)],
                  from_disk=True)
    return data, out


class TestLifecycle:
    def test_pool_starts_workers_and_closes_clean(self):
        before = set(shm_segments_alive())
        with ProcessPoolExecutorBackend(
            processes=2, config=ClusterConfig()
        ) as backend:
            assert len(backend._procs) == 2
            assert all(p.is_alive() for p in backend._procs)
            assert set(shm_segments_alive()) > before
        assert backend.closed
        assert set(shm_segments_alive()) == before
        assert all(not p.is_alive() for p in backend._procs)

    def test_close_is_idempotent(self):
        backend = ProcessPoolExecutorBackend(
            processes=1, config=ClusterConfig()
        )
        backend.close()
        backend.close()
        assert backend.closed

    def test_use_after_close_raises(self):
        backend = ProcessPoolExecutorBackend(
            processes=1, config=ClusterConfig()
        )
        backend.close()
        with pytest.raises(RuntimeError):
            backend.exchange_write([[]], [], True, None)

    def test_worker_for_partitions_contiguously(self):
        backend = ProcessPoolExecutorBackend(
            processes=3, config=ClusterConfig()
        )
        try:
            owners = [backend.worker_for(s, 8) for s in range(8)]
            assert owners == sorted(owners)  # contiguous blocks
            assert set(owners) <= {0, 1, 2}
            assert owners[0] == 0 and owners[-1] == 2
        finally:
            backend.close()


class TestCrashSemantics:
    def test_killed_worker_raises_worker_crashed_and_unlinks(self):
        before = set(shm_segments_alive())
        fs = Clusterfile(ClusterConfig(), workers_mode="process", workers=2)
        backend = fs.backend
        backend._procs[0].kill()
        backend._procs[0].join(timeout=10)
        nprocs, chunk = 4, 64
        fs.create("f", round_robin(nprocs, chunk))
        for n in range(nprocs):
            fs.set_view("f", n, round_robin(nprocs, chunk), element=n)
        data = np.arange(256, dtype=np.uint8)
        with pytest.raises(WorkerCrashed, match="died"):
            fs.write("f", [(0, 0, data)], to_disk=True)
        # The crash shut the whole pool down and unlinked its segments.
        assert backend.closed
        assert all(not p.is_alive() for p in backend._procs)
        fs.close()  # store segments go with the deployment
        assert set(shm_segments_alive()) == before

    def test_fs_close_unlinks_everything(self):
        before = set(shm_segments_alive())
        fs = Clusterfile(ClusterConfig(), workers_mode="process", workers=2)
        data, out = _write_read_roundtrip(fs)
        for n, buf in zip(sorted(data), out):
            np.testing.assert_array_equal(buf, data[n])
        assert set(shm_segments_alive()) > before
        fs.close()
        assert set(shm_segments_alive()) == before


class TestModeValidation:
    def test_bad_workers_mode_rejected(self):
        with pytest.raises(ValueError, match="workers_mode"):
            Clusterfile(ClusterConfig(), workers_mode="fibers")

    def test_process_mode_without_shm_storage_rejected_by_service(self):
        from repro.service import FileService

        fs = Clusterfile(ClusterConfig())  # thread mode, MemoryStorage
        with pytest.raises(ValueError, match="shared memory"):
            FileService(fs, workers_mode="process")
