"""Byte-identity of the multiprocess engine against thread mode.

The differential contract: for every data path — parallel write/read,
two-phase collective, physical relayout, checkpoint resharding, the
concurrent service — process mode must hand back per-byte identical
contents to thread mode on the same workload.  On top of identity,
process mode must fold its telemetry home: worker spans appear under
the parent's operation root and worker counters land in the parent
registry.
"""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.apps.checkpoint import CheckpointStore, reshard
from repro.clusterfile.collective import two_phase_read, two_phase_write
from repro.clusterfile.fs import Clusterfile
from repro.clusterfile.relayout import relayout
from repro.core.falls import Falls
from repro.core.partition import Partition
from repro.distributions import matrix_partition, round_robin, row_blocks
from repro.mp.shm import shm_segments_alive
from repro.obs import metrics as obs_metrics
from repro.service import FileService
from repro.simulation.cluster import ClusterConfig


def _block(elements, block):
    total = elements * block
    return Partition(
        [Falls(e * block, (e + 1) * block - 1, total, 1)
         for e in range(elements)]
    )


def _striped_workload(seed, nprocs=4, chunk=64, periods=8):
    rng = np.random.default_rng(seed)
    n = chunk * periods
    data = {node: rng.integers(0, 256, n, dtype=np.uint8)
            for node in range(nprocs)}
    return data, n


def _roundtrip(mode, seed, to_disk, nprocs=4, chunk=64):
    data, n = _striped_workload(seed, nprocs, chunk)
    fs = Clusterfile(ClusterConfig(), workers_mode=mode)
    try:
        fs.create("f", round_robin(nprocs, chunk))
        for node in range(nprocs):
            fs.set_view("f", node, round_robin(nprocs, chunk), element=node)
        fs.write("f", [(node, 0, data[node]) for node in range(nprocs)],
                 to_disk=to_disk)
        out = fs.read("f", [(node, 0, n) for node in range(nprocs)],
                      from_disk=to_disk)
        return [bytes(b) for b in out]
    finally:
        fs.close()


class TestDifferentialByteIdentity:
    """Per-byte oracle: thread mode is the reference, process mode the
    candidate, compared over seeds and both cache/disk variants."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("to_disk", [False, True])
    def test_write_read_identical(self, seed, to_disk):
        assert _roundtrip("thread", seed, to_disk) == (
            _roundtrip("process", seed, to_disk)
        )

    @pytest.mark.parametrize("layout", ["r", "c", "b"])
    def test_matrix_views_identical(self, layout):
        n = 32
        rng = np.random.default_rng(5)
        flat = rng.integers(0, 256, n * n, dtype=np.uint8)
        per = n * n // 4
        outs = {}
        for mode in ("thread", "process"):
            fs = Clusterfile(ClusterConfig(), workers_mode=mode)
            try:
                fs.create("m", matrix_partition(layout, n, n, 4))
                for c in range(4):
                    fs.set_view("m", c, row_blocks(n, n, 4))
                fs.write(
                    "m",
                    [(c, 0, flat[c * per:(c + 1) * per]) for c in range(4)],
                    to_disk=True,
                )
                outs[mode] = [
                    bytes(b)
                    for b in fs.read(
                        "m", [(c, 0, per) for c in range(4)], from_disk=True
                    )
                ]
            finally:
                fs.close()
        assert outs["thread"] == outs["process"]

    def test_collective_and_relayout_identical(self):
        results = {}
        for mode in ("thread", "process"):
            data, n = _striped_workload(3)
            fs = Clusterfile(ClusterConfig(), workers_mode=mode)
            try:
                fs.create("c", _block(4, n))
                for node in range(4):
                    fs.set_view("c", node, round_robin(4, 64), element=node)
                two_phase_write(
                    fs, "c",
                    [(node, 0, data[node]) for node in range(4)],
                    to_disk=True,
                )
                bufs, _ = two_phase_read(
                    fs, "c", [(node, 0, n) for node in range(4)],
                    from_disk=True,
                )
                relayout(fs, "c", _block(2, 2 * n))
                for node in range(4):
                    fs.set_view("c", node, round_robin(4, 64), element=node)
                after = fs.read(
                    "c", [(node, 0, n) for node in range(4)], from_disk=True
                )
                results[mode] = (
                    [bytes(b) for b in bufs], [bytes(b) for b in after]
                )
            finally:
                fs.close()
        assert results["thread"] == results["process"]
        # And both equal the source.
        data, n = _striped_workload(3)
        assert results["thread"][0] == [bytes(data[i]) for i in range(4)]

    def test_reshard_identical(self):
        rng = np.random.default_rng(11)
        total = 4096
        old = _block(4, total // 4)
        new = _block(8, total // 8)
        pieces = [
            rng.integers(0, 256, total // 4, dtype=np.uint8)
            for _ in range(4)
        ]
        serial = reshard(pieces, old, new, total)
        from repro.mp.pool import ProcessPoolExecutorBackend

        with ProcessPoolExecutorBackend(
            processes=3, config=ClusterConfig()
        ) as backend:
            parallel = reshard(pieces, old, new, total, backend=backend)
        assert [bytes(b) for b in serial] == [bytes(b) for b in parallel]

    def test_service_identical(self):
        outs = {}
        for mode in ("thread", "process"):
            fs = Clusterfile(ClusterConfig(), workers_mode=mode)
            try:
                fs.create("s", round_robin(4, 64))
                for node in range(4):
                    fs.set_view("s", node, round_robin(4, 64), element=node)
                rng = np.random.default_rng(9)
                with FileService(fs, workers=3, max_batch=4) as svc:
                    for k in range(24):
                        svc.submit_write(
                            "s", k % 4, (k // 4) * 64,
                            rng.integers(0, 256, 64, dtype=np.uint8),
                        )
                    assert svc.drain(timeout=120)
                outs[mode] = [
                    bytes(b)
                    for b in fs.read(
                        "s", [(node, 0, 512) for node in range(4)]
                    )
                ]
            finally:
                fs.close()
        assert outs["thread"] == outs["process"]

    def test_checkpoint_store_process_mode(self):
        rng = np.random.default_rng(13)
        arr = rng.integers(0, 256, 2048, dtype=np.uint8)
        store = CheckpointStore(workers_mode="process", workers=2)
        try:
            part = _block(4, 512)
            pieces = [arr[e * 512:(e + 1) * 512] for e in range(4)]
            store.save("ck", pieces, part, shape=(2048,))
            np.testing.assert_array_equal(store.load_array("ck"), arr)
        finally:
            store.close()


class TestTelemetryAcrossProcesses:
    def test_worker_spans_graft_under_parent_root(self):
        from repro.obs.span import Tracer

        fs = Clusterfile(ClusterConfig(), workers_mode="process")
        try:
            fs.create("t", round_robin(4, 64))
            for node in range(4):
                fs.set_view("t", node, round_robin(4, 64), element=node)
            tracer = Tracer("mp-test")
            with tracer.activate():
                fs.write(
                    "t", [(0, 0, np.zeros(256, dtype=np.uint8))],
                    to_disk=True,
                )
            (root,) = tracer.roots
            assert root.name == "parallel_write"
            workers = [c for c in root.children if c.name == "mp.worker"]
            assert workers, "worker spans must graft under the op root"
            assert all("pid" in w.attrs for w in workers)
            assert any(
                g.name == "server.write"
                for w in workers for g in w.children
            )
        finally:
            fs.close()

    def test_worker_counters_fold_into_parent_registry(self):
        obs_metrics.reset_metrics()
        _roundtrip("process", 0, True)
        snap = obs_metrics.snapshot()
        assert snap.get("mp.worker.batches", 0) > 0
        assert snap.get("mp.worker.jobs", 0) > 0

    def test_trace_cli_round_trips_process_mode(self, tmp_path):
        out = tmp_path / "trace.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools", "trace", "r", "c",
             "32", "4", "--mode", "process", "--json", str(out)],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        roots = json.loads(out.read_text())

        def names(node):
            yield node["name"]
            for c in node.get("children", []):
                yield from names(c)

        all_names = [n for r in roots for n in names(r)]
        assert "mp.worker" in all_names
        assert "server.write" in all_names


class TestChaosProcessMode:
    def test_chaos_run_byte_identical_in_process_mode(self):
        from repro.faults.chaos import default_plan, run_chaos

        report, ok = run_chaos(
            default_plan(seed=0), n_bytes=1024, nprocs=4,
            replication=2, mode="process",
        )
        assert ok, report
        assert all(p["ok"] for p in report["paths"].values())


class TestHygiene:
    def test_no_segments_leak_across_modes(self):
        before = set(shm_segments_alive())
        _roundtrip("process", 4, True)
        assert set(shm_segments_alive()) == before
