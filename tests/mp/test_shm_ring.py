"""The framed SPSC ring: framing, wrap-around, and the corrupted-frame
error paths — a bad frame must raise :class:`TransportError`, never
hang or hand back garbage bytes."""

import struct
import threading

import pytest

from repro.mp.shm import (
    ShmRing,
    TransportError,
    shm_segments_alive,
    _HDR,
    _HDR_FMT,
    _MAGIC,
    _pad8,
)


@pytest.fixture()
def ring():
    r = ShmRing.create(capacity=4096, hint="test")
    yield r
    r.close()


class TestFraming:
    def test_roundtrip_preserves_bytes_and_order(self, ring):
        frames = [b"", b"a", b"hello world", bytes(range(256))]
        for f in frames:
            ring.send(f)
        for f in frames:
            assert ring.recv() == f

    def test_zero_byte_frame(self, ring):
        ring.send(b"")
        assert ring.recv() == b""

    def test_frame_larger_than_ring_raises(self, ring):
        with pytest.raises(TransportError, match="exceeds ring capacity"):
            ring.send(b"x" * 8192)

    def test_wrap_around_many_frames(self, ring):
        # Frames sized so several rounds wrap past the end of the ring.
        payloads = [bytes([i % 256]) * (700 + i) for i in range(40)]
        done = []

        def consumer():
            for p in payloads:
                done.append(ring.recv(timeout=10.0) == p)

        t = threading.Thread(target=consumer)
        t.start()
        for p in payloads:
            ring.send(p, timeout=10.0)
        t.join(timeout=15.0)
        assert not t.is_alive()
        assert all(done) and len(done) == len(payloads)

    def test_attach_sees_creators_frames(self, ring):
        peer = ShmRing.attach(ring.name)
        try:
            ring.send(b"cross-mapping")
            assert peer.recv() == b"cross-mapping"
        finally:
            peer.close()
        # The attacher's close must not unlink the creator's segment.
        assert ring.name in shm_segments_alive()


class TestCorruptedFrames:
    """A truncated or garbage frame is a protocol violation: the reader
    raises immediately instead of waiting out the clock."""

    def _inject_raw(self, ring, raw: bytes, claim: int) -> None:
        """Write raw bytes at the producer position and publish
        ``claim`` bytes without going through ``send``."""
        pos = int(ring._ctrl[1]) % ring.capacity
        ring._data[pos : pos + len(raw)] = raw
        ring._ctrl[1] = int(ring._ctrl[1]) + claim

    def test_garbage_magic_raises(self, ring):
        self._inject_raw(ring, b"\xde\xad\xbe\xef" + b"\x00" * 12, _HDR)
        with pytest.raises(TransportError, match="garbage frame"):
            ring.recv(timeout=1.0)

    def test_truncated_frame_raises(self, ring):
        # Valid magic, but the claimed length exceeds the published bytes.
        hdr = struct.pack(_HDR_FMT, _MAGIC, 4096, 0)
        self._inject_raw(ring, hdr, _HDR)
        with pytest.raises(TransportError, match="truncated frame"):
            ring.recv(timeout=1.0)

    def test_checksum_mismatch_raises(self, ring):
        payload = b"payload-bytes"
        hdr = struct.pack(_HDR_FMT, _MAGIC, len(payload), 0xBAD)
        self._inject_raw(ring, hdr + payload, _HDR + _pad8(len(payload)))
        with pytest.raises(TransportError, match="checksum mismatch"):
            ring.recv(timeout=1.0)

    def test_recv_timeout_raises_not_hangs(self, ring):
        with pytest.raises(TransportError, match="timed out"):
            ring.recv(timeout=0.05)

    def test_dead_peer_liveness_raises(self, ring):
        with pytest.raises(TransportError, match="peer died"):
            ring.recv(timeout=30.0, liveness=lambda: False)


class TestLifecycle:
    def test_close_unlinks_owned_segment(self):
        r = ShmRing.create(capacity=2048, hint="gone")
        name = r.name
        assert name in shm_segments_alive()
        r.close()
        assert name not in shm_segments_alive()
