"""Unit tests for the trace exporters."""

import json

import numpy as np
import pytest

from repro.obs.export import (
    chrome_to_json,
    render_trace,
    trace_to_chrome,
    trace_to_dict,
    trace_to_json,
)
from repro.obs.span import Span


def _sample_tree() -> Span:
    root = Span("op", attrs={"compute": 0})
    root.wall_start_s, root.wall_end_s = 10.0, 10.01
    m = root.record("map", 0.001, subfile=1)
    m.wall_start_s, m.wall_end_s = 10.002, 10.003
    root.record_sim("io0.disk", 0.0, 0.005, io_node=0)
    return root


class TestDictJson:
    def test_nested_shape(self):
        d = trace_to_dict(_sample_tree())
        assert [r["name"] for r in d] == ["op"]
        names = [c["name"] for c in d[0]["children"]]
        assert names == ["map", "io0.disk"]
        assert d[0]["wall_us"] == pytest.approx(10000.0)
        sim = d[0]["children"][1]
        assert sim["sim_us"] == 5000.0
        assert "wall_us" not in sim  # pure simulation span

    def test_json_round_trips(self):
        s = trace_to_json(_sample_tree())
        assert json.loads(s)[0]["name"] == "op"

    def test_accepts_root_list(self):
        a, b = Span("a"), Span("b")
        assert [r["name"] for r in trace_to_dict([a, b])] == ["a", "b"]

    def test_numpy_and_dict_attrs_jsonable(self):
        sp = Span("x", attrs={"n": np.int64(3), "d": {1: np.float64(0.5)}})
        d = trace_to_dict(sp)[0]
        assert d["attrs"] == {"n": 3, "d": {"1": 0.5}}
        json.dumps(d)


class TestChrome:
    def test_processes_and_rebase(self):
        events = trace_to_chrome(_sample_tree())
        wall = [e for e in events if e.get("ph") == "X" and e["pid"] == 1]
        sim = [e for e in events if e.get("ph") == "X" and e["pid"] == 2]
        assert {e["name"] for e in wall} == {"op", "map"}
        assert {e["name"] for e in sim} == {"io0.disk"}
        # Earliest wall span is rebased to ts=0.
        assert min(e["ts"] for e in wall) == 0.0
        # Simulation spans keep the event-queue timeline.
        assert sim[0]["ts"] == 0.0 and sim[0]["dur"] == 5000.0

    def test_thread_metadata_lanes(self):
        events = trace_to_chrome(_sample_tree())
        names = {
            (e["pid"], e["args"]["name"])
            for e in events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert (1, "compute0") in names
        assert (2, "io0") in names

    def test_chrome_json_parses(self):
        assert isinstance(json.loads(chrome_to_json(_sample_tree())), list)

    def test_empty_trace_exports_empty_list(self):
        # No timed spans at all -> `[]`, not orphan metadata records.
        assert trace_to_chrome(Span("op")) == []
        assert trace_to_chrome([]) == []
        assert json.loads(chrome_to_json([])) == []

    def test_untimed_root_with_sim_children_still_exports(self):
        root = Span("op")
        root.record_sim("io0.disk", 0.0, 0.005, io_node=0)
        events = trace_to_chrome(root)
        assert any(e.get("ph") == "X" for e in events)


class TestRender:
    def test_text_tree(self):
        text = render_trace(_sample_tree())
        lines = text.splitlines()
        assert lines[0].startswith("op")
        assert lines[1].startswith("  map")
        assert "us wall" in lines[1]
        assert "sim [" in lines[2]
