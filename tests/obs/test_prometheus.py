"""Prometheus text exposition: rendering, name sanitization, and the
strict parser that gates what /metrics serves."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    parse_prometheus_text,
    prometheus_name,
    render_prometheus,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.inc("engine.write.ops", 3)
    reg.inc("engine.write.payload_bytes", 4096)
    reg.gauge("service.queue_high_water").observe(7)
    h = reg.histogram("service.wait_s")
    for v in (0.001, 0.002, 0.004, 0.5):
        h.observe(v)
    return reg


class TestNames:
    def test_dotted_to_underscored_with_prefix(self):
        assert prometheus_name("engine.write.ops") == "repro_engine_write_ops"

    def test_invalid_chars_sanitized(self):
        assert (
            prometheus_name("a.b-c/d e")
            == "repro_a_b_c_d_e"
        )

    def test_leading_digit_guarded(self):
        name = prometheus_name("9lives")
        assert not name.split("_", 1)[0][0].isdigit()


class TestRender:
    def test_counters_get_total_suffix_and_type(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE repro_engine_write_ops_total counter" in text
        assert "repro_engine_write_ops_total 3" in text

    def test_histogram_has_cumulative_buckets_sum_count(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE repro_service_wait_s histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_service_wait_s_sum" in text
        assert "repro_service_wait_s_count 4" in text

    def test_gauge_rendered_as_gauge(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE repro_service_queue_high_water gauge" in text

    def test_round_trips_through_parser(self, registry):
        families = parse_prometheus_text(render_prometheus(registry))
        assert families["repro_engine_write_ops_total"]["type"] == "counter"
        hist = families["repro_service_wait_s"]
        assert hist["type"] == "histogram"
        buckets = [
            (labels["le"], value)
            for name, labels, value in hist["samples"]
            if name.endswith("_bucket")
        ]
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 4

    def test_empty_registry_renders_and_parses(self):
        text = render_prometheus(MetricsRegistry())
        assert parse_prometheus_text(text) == {}


class TestParserStrictness:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_prometheus_text("repro_x_total 3\n")

    def test_rejects_non_cumulative_buckets(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError, match="monotal|monoton|cumulative"):
            parse_prometheus_text(bad)

    def test_rejects_count_mismatching_inf_bucket(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 4\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_rejects_histogram_missing_inf_bucket(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)

    def test_rejects_malformed_sample_line(self):
        with pytest.raises(ValueError):
            parse_prometheus_text(
                "# TYPE repro_x counter\nrepro_x_total not_a_number\n"
            )

    def test_inf_values_parse(self):
        text = "# TYPE repro_g gauge\nrepro_g +Inf\n"
        fam = parse_prometheus_text(text)
        assert fam["repro_g"]["samples"][0][2] == math.inf
