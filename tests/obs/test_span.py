"""Unit tests for the span/tracer layer."""

import pytest

from repro.obs.span import (
    Span,
    Tracer,
    active_tracer,
    current_span,
    open_span,
    tracked_span,
)


class TestSpan:
    def test_wall_clock_properties(self):
        sp = Span("x")
        assert sp.wall_s == 0.0  # incomplete span has no duration
        sp.wall_start_s = 1.0
        assert sp.wall_s == 0.0
        sp.wall_end_s = 1.5
        assert sp.wall_s == pytest.approx(0.5)
        assert sp.wall_us == pytest.approx(5e5)

    def test_sim_clock_properties(self):
        sp = Span("x")
        assert sp.sim_s == 0.0
        sp.sim_start_s, sp.sim_end_s = 2.0, 2.25
        assert sp.sim_s == pytest.approx(0.25)

    def test_measure_attaches_timed_child(self):
        root = Span("root")
        with root.measure("phase", tag=7) as sp:
            pass
        assert root.children == [sp]
        assert sp.attrs == {"tag": 7}
        assert sp.wall_start_s is not None and sp.wall_end_s is not None

    def test_measure_exception_safe(self):
        root = Span("root")
        with pytest.raises(RuntimeError):
            with root.measure("boom"):
                raise RuntimeError
        assert root.children[0].wall_end_s is not None

    def test_record_sets_exact_duration(self):
        root = Span("root")
        sp = root.record("phase", 0.125)
        assert sp.wall_s == pytest.approx(0.125)

    def test_record_sim(self):
        root = Span("root")
        sp = root.record_sim("disk", 1.0, 3.0, io_node=2)
        assert sp.sim_s == pytest.approx(2.0)
        assert sp.attrs["io_node"] == 2

    def test_walk_and_find(self):
        root = Span("root")
        a = root.child("a")
        b = a.child("b")
        a2 = root.child("a")
        assert list(root.walk()) == [root, a, b, a2]
        assert root.find_all("a") == [a, a2]
        assert root.find("b") is b
        assert root.find("missing") is None
        assert root.phase_names() == ["root", "a", "b"]

    def test_annotate_chains(self):
        sp = Span("x").annotate(k=1).annotate(j=2)
        assert sp.attrs == {"k": 1, "j": 2}


class TestOpenSpan:
    def test_standalone_root(self):
        assert current_span() is None
        with open_span("op") as sp:
            assert current_span() is sp
        assert current_span() is None
        assert sp.wall_s >= 0.0

    def test_nesting_under_current(self):
        with open_span("outer") as outer:
            with open_span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert outer.children == [inner]

    def test_stack_unwinds_on_exception(self):
        with pytest.raises(ValueError):
            with open_span("outer"):
                with open_span("inner"):
                    raise ValueError
        assert current_span() is None


class TestTrackedSpan:
    def test_noop_when_nobody_listens(self):
        with tracked_span("hot") as sp:
            assert sp is None

    def test_active_under_open_span(self):
        with open_span("outer") as outer:
            with tracked_span("hot") as sp:
                assert sp is not None
        assert outer.children == [sp]


class TestTracer:
    def test_collects_roots(self):
        tracer = Tracer("t")
        with tracer.activate():
            assert active_tracer() is tracer
            with open_span("first"):
                with open_span("child"):
                    pass
            with open_span("second"):
                pass
        assert active_tracer() is None
        assert [r.name for r in tracer.roots] == ["first", "second"]
        assert tracer.roots[0].children[0].name == "child"

    def test_tracked_span_roots_under_tracer(self):
        tracer = Tracer("t")
        with tracer.activate():
            with tracked_span("hot") as sp:
                assert sp is not None
        assert tracer.roots == [sp]

    def test_clear(self):
        tracer = Tracer("t")
        with tracer.activate():
            with open_span("x"):
                pass
        tracer.clear()
        assert tracer.roots == []
