"""Per-tenant SLO objectives: spec parsing, windowed burn-rate math on
a fake clock, multi-window alert transitions, the /stats payload, and
the Prometheus exposition of the slo.* families."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.live import stats_payload
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import parse_prometheus_text, render_prometheus
from repro.obs.slo import SloObjective, SloTracker


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _tracker(registry, clock, tenant="t0", threshold=0.05, target=0.99):
    return SloTracker(
        [SloObjective(tenant, threshold, target)],
        registry=registry,
        clock=clock,
        min_tick_s=1.0,
    )


def _feed(registry, tenant, good=0, bad=0, threshold=0.05):
    """Observe `good` samples under and `bad` samples over threshold."""
    hist = registry.histogram(f"service.tenant.{tenant}.wait_s")
    for _ in range(good):
        hist.observe(threshold / 10.0)
    for _ in range(bad):
        hist.observe(threshold * 100.0)


class TestObjective:
    def test_parse_cli_form(self):
        obj = SloObjective.parse("t0=0.05@0.99")
        assert obj.tenant == "t0"
        assert obj.threshold_s == 0.05
        assert obj.target == 0.99
        assert obj.budget == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "spec",
        ["t0", "t0=0.05", "t0=abc@0.99", "t0=0.05@1.5", "t0=-1@0.9"],
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            SloObjective.parse(spec)


class TestBurnMath:
    def test_no_traffic_means_zero_burn(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        tr = _tracker(reg, clock)
        tr.tick(force=True)
        assert tr.burn_rate("t0", 60) == 0.0

    def test_all_good_burns_nothing(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        tr = _tracker(reg, clock)
        tr.tick(force=True)
        _feed(reg, "t0", good=100)
        clock.advance(10)
        tr.tick()
        assert tr.burn_rate("t0", 60) == 0.0

    def test_burn_is_bad_fraction_over_budget(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        # budget = 0.10; 20% bad in the window -> burn 2.0.
        tr = _tracker(reg, clock, target=0.90)
        tr.tick(force=True)
        _feed(reg, "t0", good=80, bad=20)
        clock.advance(10)
        tr.tick()
        assert tr.burn_rate("t0", 60) == pytest.approx(2.0)

    def test_window_excludes_old_badness(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        tr = _tracker(reg, clock, target=0.90)
        tr.tick(force=True)
        _feed(reg, "t0", bad=50)  # old badness
        clock.advance(5)
        tr.tick()
        clock.advance(120)  # well past the 60s window
        tr.tick()
        _feed(reg, "t0", good=100)  # recent traffic is clean
        clock.advance(5)
        tr.tick()
        assert tr.burn_rate("t0", 60) == 0.0
        # ...but the hour window still sees the old bad requests.
        assert tr.burn_rate("t0", 3600) == pytest.approx((50 / 150) / 0.10)

    def test_tick_is_idempotent_within_min_interval(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        tr = _tracker(reg, clock)
        tr.tick(force=True)
        tr.tick()
        tr.tick()
        assert len(tr._history["t0"]) == 1
        clock.advance(2)
        tr.tick()
        assert len(tr._history["t0"]) == 2

    def test_burn_gauges_refresh_on_tick(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        tr = _tracker(reg, clock, target=0.90)
        tr.tick(force=True)
        _feed(reg, "t0", bad=100)
        clock.advance(10)
        tr.tick()
        gauges = reg.gauges("slo.t0.burn_rate")
        assert gauges["slo.t0.burn_rate.60s"]["last"] == pytest.approx(10.0)


class TestAlerts:
    def _burning_tracker(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        tr = _tracker(reg, clock, target=0.90)
        tr.tick(force=True)
        _feed(reg, "t0", bad=100)  # burn 10.0 in every window
        clock.advance(10)
        tr.tick()
        return reg, clock, tr

    def test_multiwindow_rule_fires_both_windows(self):
        reg, clock, tr = self._burning_tracker()
        firing = tr.alerts()
        # burn 10.0: over the 6.0 "ticket" rule, under the 14.4 "page".
        assert [a["severity"] for a in firing] == ["ticket"]
        alert = firing[0]
        assert alert["tenant"] == "t0"
        assert alert["burn_long"] == pytest.approx(10.0)
        assert alert["burn_short"] == pytest.approx(10.0)

    def test_alert_counter_counts_transitions_not_polls(self):
        reg, clock, tr = self._burning_tracker()
        tr.alerts()
        tr.alerts()
        tr.alerts()
        assert reg.snapshot()["slo.alerts"] == 1
        # Clear: clean traffic pushes the short window under threshold.
        _feed(reg, "t0", good=10000)
        clock.advance(10)
        tr.tick()
        assert tr.alerts() == []
        # Re-fire is a new transition.
        _feed(reg, "t0", bad=100000)
        clock.advance(10)
        tr.tick()
        assert tr.alerts()
        assert reg.snapshot()["slo.alerts"] == 2

    def test_short_window_recovery_silences_page(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        tr = SloTracker(
            [SloObjective("t0", 0.05, 0.99)],
            registry=reg,
            clock=clock,
            min_tick_s=1.0,
            burn_rules=((300, 60, 14.4, "page"),),
        )
        tr.tick(force=True)
        _feed(reg, "t0", bad=100)
        # Tick steadily so the badness ages out of the 60s window but
        # stays inside the 300s one.
        for _ in range(9):
            clock.advance(10)
            tr.tick()
        # Long window still burning, short one clean: no alert.
        assert tr.burn_rate("t0", 300) > 14.4
        assert tr.burn_rate("t0", 60) == 0.0
        assert tr.alerts() == []


class TestPayload:
    def test_payload_shape_and_compliance(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        tr = _tracker(reg, clock, target=0.90)
        _feed(reg, "t0", good=90, bad=10)
        tr.tick(force=True)
        payload = tr.payload()
        t0 = payload["tenants"]["t0"]
        assert t0["objective"] == {
            "threshold_s": 0.05,
            "target": 0.90,
            "budget": pytest.approx(0.10),
        }
        assert t0["good"] == 90 and t0["total"] == 100
        assert t0["compliance"] == pytest.approx(0.90)
        assert set(t0["burn_rate"]) == {"60s", "300s", "3600s"}
        assert payload["alerts"] == []

    def test_stats_payload_gains_slo_and_alerts_sections(self):
        reg = MetricsRegistry()
        clock = FakeClock()
        tr = _tracker(reg, clock)
        _feed(reg, "t0", good=5)
        payload = stats_payload(registry=reg, slo=tr)
        assert "slo" in payload
        assert payload["slo"]["tenants"]["t0"]["total"] == 5
        assert payload["alerts"] == payload["slo"]["alerts"]

    def test_stats_payload_without_slo_is_unchanged(self):
        reg = MetricsRegistry()
        payload = stats_payload(registry=reg)
        assert "slo" not in payload
        assert "alerts" not in payload


class TestPrometheusFamilies:
    def test_slo_families_round_trip(self):
        obs_metrics.reset_metrics("slo")
        obs_metrics.reset_metrics("service.tenant")
        reg = obs_metrics.get_registry()
        clock = FakeClock()
        tr = _tracker(reg, clock, target=0.90)
        tr.tick(force=True)
        _feed(reg, "t0", bad=10)
        clock.advance(10)
        tr.tick()
        tr.alerts()
        families = parse_prometheus_text(render_prometheus())
        assert families["repro_slo_ticks_total"]["type"] == "counter"
        assert families["repro_slo_alerts_total"]["samples"][0][2] == 1.0
        assert (
            families["repro_slo_t0_objective_threshold_s"]["samples"][0][2]
            == 0.05
        )
        burn = families["repro_slo_t0_burn_rate_60s"]
        assert burn["type"] == "gauge"
        assert burn["samples"][0][2] == pytest.approx(10.0)
        obs_metrics.reset_metrics("slo")
        obs_metrics.reset_metrics("service.tenant")
