"""Histogram correctness: error bound, exact totals, exemplars, and
multi-thread reconciliation."""

import math
import threading

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.histogram import (
    DEFAULT_GROWTH,
    Histogram,
)


class TestBucketing:
    def test_bucket_count_is_fixed_at_construction(self):
        h = Histogram("t")
        expected = math.ceil(math.log(1e7 / 1e-7) / math.log(DEFAULT_GROWTH))
        assert h.bucket_count == expected == 373
        for v in (0.0, 1e-12, 1e-3, 1.0, 1e9):
            h.observe(v)
        assert h.bucket_count == expected  # observations never grow it

    def test_error_bound_matches_growth(self):
        h = Histogram("t")
        assert h.error_bound == pytest.approx(math.sqrt(DEFAULT_GROWTH) - 1)
        assert h.error_bound < 0.045

    def test_quantiles_within_error_bound(self):
        rng = np.random.default_rng(7)
        samples = np.exp(rng.normal(np.log(1e-3), 1.0, 20000))
        h = Histogram("t")
        for v in samples:
            h.observe(float(v))
        for q in (0.50, 0.90, 0.99):
            exact = float(np.quantile(samples, q))
            est = h.quantile(q)
            assert abs(est - exact) / exact <= h.error_bound + 1e-9, q

    def test_quantile_edges_clamp_to_exact_extrema(self):
        h = Histogram("t")
        for v in (0.010, 0.011, 0.012):
            h.observe(v)
        assert 0.012 * (1 - h.error_bound) <= h.quantile(1.0) <= 0.012
        assert h.quantile(1e-9) >= 0.010

    def test_zero_and_negative_values_land_in_zero_bucket(self):
        h = Histogram("t")
        h.observe(0.0)
        h.observe(-1.5)
        h.observe(1e-3)
        assert h.count == 3
        assert h.quantile(0.5) == 0.0
        bounds = [b for b, _ in h.buckets()]
        assert bounds[0] == h.lowest  # zero bucket reported at `lowest`

    def test_out_of_range_values_clamp_not_crash(self):
        h = Histogram("t", lowest=1e-3, highest=1e3)
        h.observe(1e-9)
        h.observe(1e9)
        assert h.count == 2
        assert h.max == 1e9  # exact extrema still true
        assert h.sum == pytest.approx(1e9 + 1e-9)

    def test_rejects_bad_construction_and_queries(self):
        with pytest.raises(ValueError):
            Histogram("t", growth=1.0)
        with pytest.raises(ValueError):
            Histogram("t", lowest=1.0, highest=0.5)
        h = Histogram("t")
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestExactTotals:
    def test_sum_count_max_min_last_are_exact(self):
        rng = np.random.default_rng(3)
        samples = rng.uniform(1e-6, 1e-2, 500)
        h = Histogram("t")
        for v in samples:
            h.observe(float(v))
        assert h.count == 500
        assert h.sum == pytest.approx(float(samples.sum()), rel=1e-12)
        assert h.max == float(samples.max())
        assert h.min == float(samples.min())
        assert h.last == float(samples[-1])
        assert h.as_dict()["mean"] == pytest.approx(float(samples.mean()))

    def test_buckets_are_cumulative_and_reconcile(self):
        h = Histogram("t")
        for v in (1e-4, 2e-4, 5e-3, 5e-3, 1.0):
            h.observe(v)
        buckets = h.buckets()
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)  # cumulative
        assert buckets[-1] == (math.inf, 5)

    def test_as_dict_has_legacy_gauge_keys_plus_quantiles(self):
        h = Histogram("t")
        h.observe(0.5)
        d = h.as_dict()
        assert set(d) == {
            "last", "max", "sum", "count", "mean", "p50", "p90", "p99"
        }


class TestExemplars:
    def test_keeps_k_slowest_with_attrs(self):
        h = Histogram("t", exemplar_k=3)
        for i in range(10):
            h.observe(float(i), trace_id=f"op-{i:08d}")
        ex = h.exemplars()
        assert [e["value"] for e in ex] == [9.0, 8.0, 7.0]
        assert ex[0]["trace_id"] == "op-00000009"

    def test_plain_observations_are_not_candidates(self):
        h = Histogram("t")
        h.observe(100.0)  # no attrs: never an exemplar
        h.observe(1.0, trace_id="op-1")
        assert [e["value"] for e in h.exemplars()] == [1.0]


class TestConcurrency:
    def test_multi_thread_hammer_reconciles_exactly(self):
        """N threads hammer one histogram and a counter; totals must
        reconcile to the sample exactly — no lost updates."""
        h = Histogram("t", exemplar_k=4)
        c = obs_metrics.Counter("hits")
        n_threads, per_thread = 8, 2000
        start = threading.Barrier(n_threads)

        def work(tid):
            rng = np.random.default_rng(tid)
            vals = rng.uniform(1e-6, 1e-3, per_thread)
            start.wait()
            for i, v in enumerate(vals):
                h.observe(float(v), trace_id=f"op-{tid}-{i}")
                c.inc()
            return float(vals.sum()), float(vals.max())

        sums = {}
        threads = [
            threading.Thread(
                target=lambda t=t: sums.__setitem__(t, work(t))
            )
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == c.value == n_threads * per_thread
        assert h.sum == pytest.approx(
            sum(s for s, _ in sums.values()), rel=1e-9
        )
        assert h.max == max(m for _, m in sums.values())
        assert sum(1 for _ in h.buckets()) >= 1
        assert h.buckets()[-1][1] == h.count
        # The slowest exemplar is the true global max.
        assert h.exemplars()[0]["value"] == h.max


class TestRegistryIntegration:
    def test_gauges_view_includes_histograms(self):
        reg = obs_metrics.MetricsRegistry()
        reg.histogram("svc.wait_s").observe(0.25)
        reg.gauge("svc.depth").observe(3)
        view = reg.gauges("svc")
        assert view["svc.wait_s"]["p99"] == pytest.approx(0.25, rel=0.05)
        assert "p99" not in view["svc.depth"]  # plain gauges unchanged

    def test_reset_bumps_generation_and_drops_histograms(self):
        reg = obs_metrics.MetricsRegistry()
        gen = reg.generation
        reg.histogram("a.h").observe(1.0)
        reg.reset("a")
        assert reg.generation == gen + 1
        assert not reg.histograms("a")

    def test_histogram_kwargs_apply_on_first_use_only(self):
        reg = obs_metrics.MetricsRegistry()
        h1 = reg.histogram("x", exemplar_k=2)
        h2 = reg.histogram("x", exemplar_k=99)
        assert h1 is h2
        assert h1.exemplar_k == 2
