"""Unit tests for the metrics registry."""

import threading

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    inc,
    reset_metrics,
    snapshot,
)


class TestMetricsRegistry:
    def test_counter_created_on_first_use(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        assert c.value == 0
        assert reg.counter("a.b") is c

    def test_inc(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 4)
        assert reg.snapshot() == {"x": 5}

    def test_snapshot_prefix_filter(self):
        reg = MetricsRegistry()
        reg.inc("cache.hits", 2)
        reg.inc("cache.misses", 1)
        reg.inc("cachet.other", 9)  # prefix must match on dot boundaries
        reg.inc("engine.ops", 3)
        assert reg.snapshot("cache") == {"cache.hits": 2, "cache.misses": 1}
        assert reg.snapshot("cache.hits") == {"cache.hits": 2}

    def test_reset_prefix(self):
        reg = MetricsRegistry()
        reg.inc("a.x")
        reg.inc("a.y")
        reg.inc("b.z")
        reg.reset("a")
        assert reg.snapshot() == {"b.z": 1}
        reg.reset()
        assert reg.snapshot() == {}

    def test_thread_safety(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot()["n"] == 4000


class TestProcessWideRegistry:
    def test_module_functions_hit_one_registry(self):
        reset_metrics("test_obs")
        inc("test_obs.k", 7)
        assert snapshot("test_obs") == {"test_obs.k": 7}
        assert get_registry().counter("test_obs.k").value == 7
        reset_metrics("test_obs")
        assert snapshot("test_obs") == {}
