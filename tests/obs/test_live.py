"""Live export: the telemetry sampler's bounded ring and a real HTTP
round-trip — /metrics parsed by the strict Prometheus parser, /stats as
JSON — against a service that just did real work."""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.obs import metrics as obs_metrics
from repro.obs.live import StatsServer, TelemetrySampler, stats_payload
from repro.obs.prometheus import parse_prometheus_text
from repro.service import FileService
from repro.simulation.cluster import ClusterConfig


def _run_some_ops(n_ops: int = 12) -> None:
    fs = Clusterfile(ClusterConfig())
    fs.create("live", round_robin(4, 64))
    for node in range(4):
        fs.set_view("live", node, round_robin(4, 64))
    rng = np.random.default_rng(0)
    with FileService(fs, workers=2, max_queue=64, max_batch=4) as svc:
        for i in range(n_ops):
            svc.submit_write(
                "live", i % 4, 0, rng.integers(0, 256, 64, dtype=np.uint8)
            )
        assert svc.drain(timeout=60)


class TestSampler:
    def test_ring_is_bounded(self):
        sampler = TelemetrySampler(capacity=4, interval_s=60)
        for _ in range(10):
            sampler.sample()
        assert len(sampler) == 4
        assert len(sampler.series()) == 4

    def test_series_limit_returns_tail(self):
        sampler = TelemetrySampler(capacity=8, interval_s=60)
        for _ in range(5):
            sampler.sample()
        tail = sampler.series(limit=2)
        assert len(tail) == 2
        assert tail == sampler.series()[-2:]

    def test_background_thread_collects_and_stops(self):
        with TelemetrySampler(interval_s=0.02) as sampler:
            time.sleep(0.12)
        n = len(sampler)
        assert n >= 2
        time.sleep(0.06)
        assert len(sampler) == n  # stopped: no further growth

    def test_samples_carry_counters_and_timestamps(self):
        obs_metrics.reset_metrics()
        obs_metrics.inc("engine.write.ops", 2)
        sampler = TelemetrySampler(interval_s=60)
        sampler.sample()
        (s,) = sampler.series()
        assert s["counters"]["engine.write.ops"] == 2
        assert s["t"] > 0


class TestStatsPayload:
    def test_derived_cache_hit_rates(self):
        reg = obs_metrics.MetricsRegistry()
        reg.inc("plan_cache.global.hits", 7)
        reg.inc("plan_cache.global.misses", 3)
        payload = stats_payload(registry=reg)
        assert payload["derived"]["plan_cache.global.hit_rate"] == (
            pytest.approx(0.7)
        )

    def test_real_run_surfaces_plan_cache_rate(self):
        obs_metrics.reset_metrics()
        _run_some_ops(n_ops=6)
        payload = stats_payload()
        assert "plan_cache.global.hit_rate" in payload["derived"]

    def test_exemplars_surface_per_histogram(self):
        reg = obs_metrics.MetricsRegistry()
        reg.histogram("e.op_s").observe(0.5, trace_id="op-00000001")
        payload = stats_payload(registry=reg)
        assert payload["exemplars"]["e.op_s"][0]["trace_id"] == "op-00000001"


class TestHttpRoundTrip:
    def test_metrics_and_stats_against_live_service(self):
        obs_metrics.reset_metrics()
        _run_some_ops()
        with TelemetrySampler(interval_s=60) as sampler:
            sampler.sample()
            with StatsServer(port=0, sampler=sampler) as server:
                with urllib.request.urlopen(
                    server.url + "/metrics", timeout=10
                ) as resp:
                    assert resp.status == 200
                    assert "text/plain" in resp.headers["Content-Type"]
                    families = parse_prometheus_text(
                        resp.read().decode("utf-8")
                    )
                # Counters and histograms from the real run are served.
                assert (
                    families["repro_engine_write_ops_total"]["samples"][0][2]
                    > 0
                )
                assert families["repro_service_wait_s"]["type"] == "histogram"
                assert (
                    families["repro_engine_write_op_s"]["type"] == "histogram"
                )

                with urllib.request.urlopen(
                    server.url + "/stats", timeout=10
                ) as resp:
                    assert resp.status == 200
                    stats = json.load(resp)
                assert stats["counters"]["engine.write.ops"] > 0
                assert "service.wait_s" in stats["distributions"]
                assert stats["distributions"]["service.wait_s"]["count"] > 0
                # Exemplars link the slow ops back to their trace ids.
                ex = stats["exemplars"]["engine.write.op_s"]
                assert ex[0]["trace_id"].startswith("op-")
                assert stats["series"], "sampler series should be served"

                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(
                        server.url + "/nope", timeout=10
                    )
                assert err.value.code == 404

    def test_ephemeral_port_is_assigned(self):
        with StatsServer(port=0) as server:
            assert server.port > 0
            assert server.url.startswith("http://127.0.0.1:")
