"""Live export: the telemetry sampler's bounded ring and a real HTTP
round-trip — /metrics parsed by the strict Prometheus parser, /stats as
JSON — against a service that just did real work."""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.obs import metrics as obs_metrics
from repro.obs.live import StatsServer, TelemetrySampler, stats_payload
from repro.obs.prometheus import parse_prometheus_text
from repro.service import FileService
from repro.simulation.cluster import ClusterConfig


def _run_some_ops(n_ops: int = 12) -> None:
    fs = Clusterfile(ClusterConfig())
    fs.create("live", round_robin(4, 64))
    for node in range(4):
        fs.set_view("live", node, round_robin(4, 64))
    rng = np.random.default_rng(0)
    with FileService(fs, workers=2, max_queue=64, max_batch=4) as svc:
        for i in range(n_ops):
            svc.submit_write(
                "live", i % 4, 0, rng.integers(0, 256, 64, dtype=np.uint8)
            )
        assert svc.drain(timeout=60)


class TestSampler:
    def test_ring_is_bounded(self):
        sampler = TelemetrySampler(capacity=4, interval_s=60)
        for _ in range(10):
            sampler.sample()
        assert len(sampler) == 4
        assert len(sampler.series()) == 4

    def test_series_limit_returns_tail(self):
        sampler = TelemetrySampler(capacity=8, interval_s=60)
        for _ in range(5):
            sampler.sample()
        tail = sampler.series(limit=2)
        assert len(tail) == 2
        assert tail == sampler.series()[-2:]

    def test_background_thread_collects_and_stops(self):
        with TelemetrySampler(interval_s=0.02) as sampler:
            time.sleep(0.12)
        n = len(sampler)
        assert n >= 2
        time.sleep(0.06)
        assert len(sampler) == n  # stopped: no further growth

    def test_samples_carry_counters_and_timestamps(self):
        obs_metrics.reset_metrics()
        obs_metrics.inc("engine.write.ops", 2)
        sampler = TelemetrySampler(interval_s=60)
        sampler.sample()
        (s,) = sampler.series()
        assert s["counters"]["engine.write.ops"] == 2
        assert s["t"] > 0


class TestStatsPayload:
    def test_derived_cache_hit_rates(self):
        reg = obs_metrics.MetricsRegistry()
        reg.inc("plan_cache.global.hits", 7)
        reg.inc("plan_cache.global.misses", 3)
        payload = stats_payload(registry=reg)
        assert payload["derived"]["plan_cache.global.hit_rate"] == (
            pytest.approx(0.7)
        )

    def test_real_run_surfaces_plan_cache_rate(self):
        obs_metrics.reset_metrics()
        _run_some_ops(n_ops=6)
        payload = stats_payload()
        assert "plan_cache.global.hit_rate" in payload["derived"]

    def test_exemplars_surface_per_histogram(self):
        reg = obs_metrics.MetricsRegistry()
        reg.histogram("e.op_s").observe(0.5, trace_id="op-00000001")
        payload = stats_payload(registry=reg)
        assert payload["exemplars"]["e.op_s"][0]["trace_id"] == "op-00000001"


class TestStatsPayloadNamespaceAndTenants:
    """/stats surfaces namespace lookup-cache health and per-tenant
    queue-depth quantiles alongside the plan-cache section."""

    def test_namespace_section_groups_per_cache(self):
        reg = obs_metrics.MetricsRegistry()
        reg.inc("namespace.lookup_cache.hits", 9)
        reg.inc("namespace.lookup_cache.misses", 1)
        reg.inc("namespace.lookup_cache.evictions", 2)
        reg.inc("namespace.lookup_cache.invalidations", 3)
        payload = stats_payload(registry=reg)
        cache = payload["namespace"]["lookup_cache"]
        assert cache["hits"] == 9
        assert cache["misses"] == 1
        assert cache["evictions"] == 2
        assert cache["invalidations"] == 3
        assert cache["hit_rate"] == pytest.approx(0.9)
        # The generic hits/misses machinery derives the same rate.
        assert payload["derived"]["namespace.lookup_cache.hit_rate"] == (
            pytest.approx(0.9)
        )

    def test_tenants_section_has_queue_depth_quantiles(self):
        reg = obs_metrics.MetricsRegistry()
        h = reg.histogram("service.tenant.acme.queue_depth")
        for depth in (1, 2, 3, 4):
            h.observe(depth)
        reg.inc("service.tenant.acme.enqueued", 4)
        reg.inc("service.tenant.acme.rejected", 1)
        payload = stats_payload(registry=reg)
        acme = payload["tenants"]["acme"]
        assert acme["queue_depth"]["count"] == 4
        assert acme["queue_depth"]["max"] == 4
        assert {"p50", "p90", "p99"} <= set(acme["queue_depth"])
        assert acme["enqueued"] == 4
        assert acme["rejected"] == 1

    def test_sections_absent_when_unused(self):
        payload = stats_payload(registry=obs_metrics.MetricsRegistry())
        assert "namespace" not in payload
        assert "tenants" not in payload

    def test_real_namespace_run_reaches_stats_endpoint(self):
        from repro.namespace import ClusterNamespace

        obs_metrics.reset_metrics()
        cns = ClusterNamespace(Clusterfile(ClusterConfig()))
        cns.create("/live/a", round_robin(4, 64), parents=True)
        for node in range(4):
            cns.set_view("/live/a", node, round_robin(4, 64))
        rng = np.random.default_rng(0)
        with FileService(cns.fs, workers=2, namespace=cns) as svc:
            for i in range(8):
                svc.submit_write(
                    "/live/a",
                    i % 4,
                    0,
                    rng.integers(0, 256, 64, dtype=np.uint8),
                    tenant="acme",
                )
            assert svc.drain(timeout=60)
        with StatsServer(port=0) as server:
            with urllib.request.urlopen(
                server.url + "/stats", timeout=10
            ) as resp:
                stats = json.load(resp)
        cache = stats["namespace"]["lookup_cache"]
        assert cache["hits"] + cache["misses"] > 0
        assert cache["hit_rate"] > 0  # repeated path lookups hit
        acme = stats["tenants"]["acme"]
        assert acme["queue_depth"]["count"] == 8
        assert acme["enqueued"] == 8
        assert acme["rejected"] == 0


class TestHttpRoundTrip:
    def test_metrics_and_stats_against_live_service(self):
        obs_metrics.reset_metrics()
        _run_some_ops()
        with TelemetrySampler(interval_s=60) as sampler:
            sampler.sample()
            with StatsServer(port=0, sampler=sampler) as server:
                with urllib.request.urlopen(
                    server.url + "/metrics", timeout=10
                ) as resp:
                    assert resp.status == 200
                    assert "text/plain" in resp.headers["Content-Type"]
                    families = parse_prometheus_text(
                        resp.read().decode("utf-8")
                    )
                # Counters and histograms from the real run are served.
                assert (
                    families["repro_engine_write_ops_total"]["samples"][0][2]
                    > 0
                )
                assert families["repro_service_wait_s"]["type"] == "histogram"
                assert (
                    families["repro_engine_write_op_s"]["type"] == "histogram"
                )

                with urllib.request.urlopen(
                    server.url + "/stats", timeout=10
                ) as resp:
                    assert resp.status == 200
                    stats = json.load(resp)
                assert stats["counters"]["engine.write.ops"] > 0
                assert "service.wait_s" in stats["distributions"]
                assert stats["distributions"]["service.wait_s"]["count"] > 0
                # Exemplars link the slow ops back to their trace ids.
                ex = stats["exemplars"]["engine.write.op_s"]
                assert ex[0]["trace_id"].startswith("op-")
                assert stats["series"], "sampler series should be served"

                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(
                        server.url + "/nope", timeout=10
                    )
                assert err.value.code == 404

    def test_ephemeral_port_is_assigned(self):
        with StatsServer(port=0) as server:
            assert server.port > 0
            assert server.url.startswith("http://127.0.0.1:")


class TestStatsPayloadPlanCache:
    """The plan cache's own hit/miss counters ride the /stats payload."""

    def test_plan_cache_section_present(self):
        payload = stats_payload(registry=obs_metrics.MetricsRegistry())
        assert "plan_cache" in payload
        assert {"hits", "misses"} <= set(payload["plan_cache"])

    def test_plan_cache_hit_rate_after_real_ops(self):
        from repro.redistribution.plan_cache import clear_plan_cache

        clear_plan_cache()
        _run_some_ops(n_ops=6)
        payload = stats_payload()
        cache = payload["plan_cache"]
        assert cache["hits"] + cache["misses"] > 0
        assert cache["hit_rate"] == pytest.approx(
            cache["hits"] / (cache["hits"] + cache["misses"])
        )

    def test_stats_endpoint_serves_plan_cache(self):
        with StatsServer(port=0) as server:
            with urllib.request.urlopen(
                server.url + "/stats", timeout=10
            ) as resp:
                stats = json.load(resp)
        assert "plan_cache" in stats


class TestStatsServerShutdown:
    """close() must release the listening socket and join the serving
    thread deterministically — whether or not start() ever ran."""

    def test_close_without_start_releases_port(self):
        server = StatsServer(port=0)
        port = server.port
        server.close()  # must not hang in shutdown() with no thread
        # The socket is closed: the same port can be bound again.
        rebound = StatsServer(port=port)
        assert rebound.port == port
        rebound.close()

    def test_close_after_start_joins_thread_and_releases_port(self):
        server = StatsServer(port=0).start()
        port = server.port
        thread = server._thread
        server.close()
        assert thread is not None and not thread.is_alive()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(server.url + "/stats", timeout=1)
        rebound = StatsServer(port=port)
        assert rebound.port == port
        rebound.close()

    def test_close_is_idempotent_and_start_after_close_raises(self):
        server = StatsServer(port=0).start()
        server.close()
        server.close()  # second close is a no-op
        assert server.port > 0  # address still reportable
        with pytest.raises(RuntimeError, match="closed"):
            server.start()
