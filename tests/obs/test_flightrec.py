"""Flight recorder: ring round-trips, torn-slot detection, wrap order,
the intern table, and the Prometheus exposition of its counters."""

import os

import pytest

from repro.obs import flightrec as fr
from repro.obs import forensics as fx
from repro.obs import metrics as obs_metrics
from repro.obs.prometheus import parse_prometheus_text, render_prometheus


@pytest.fixture
def ring_path(tmp_path):
    return str(tmp_path / "flight.ring")


class TestRecordRoundTrip:
    def test_events_decode_back_verbatim(self, ring_path):
        with fr.FlightRecorder(ring_path, capacity=64) as rec:
            t = rec.tenant_key("acme")
            f = rec.file_key("ledger")
            rec.record(
                fr.EV_OP_START, trace=42, tseq=7, tenant=t, file=f,
                a=512, b=64,
            )
            rec.record(
                fr.EV_OP_FINISH, trace=42, tseq=7, tenant=t, file=f,
                a=512, b=0,
            )
        dump = fx.decode_ring(ring_path)
        assert dump.torn == 0
        assert [e.name for e in dump.events] == ["op_start", "op_finish"]
        start = dump.events[0]
        assert start.trace == 42
        assert start.trace_id == "op-00000042"
        assert start.tseq == 7
        assert start.a == 512 and start.b == 64
        assert dump.tenant_name(start.tenant) == "acme"
        assert dump.file_name(start.file) == "ledger"

    def test_sequence_is_monotonic_and_timestamps_ordered(self, ring_path):
        with fr.FlightRecorder(ring_path, capacity=32) as rec:
            for i in range(10):
                rec.record(fr.EV_BATCH, a=i)
        dump = fx.decode_ring(ring_path)
        seqs = [e.seq for e in dump.events]
        assert seqs == list(range(1, 11))
        times = [e.t_ns for e in dump.events]
        assert times == sorted(times)

    def test_wrap_keeps_exactly_the_newest_capacity_events(self, ring_path):
        with fr.FlightRecorder(ring_path, capacity=8) as rec:
            for i in range(21):
                rec.record(fr.EV_OP_FINISH, tseq=i)
        dump = fx.decode_ring(ring_path)
        assert dump.wrapped
        assert dump.torn == 0
        assert [e.seq for e in dump.events] == list(range(14, 22))
        assert [e.tseq for e in dump.events] == list(range(13, 21))

    def test_ring_file_survives_close(self, ring_path):
        rec = fr.FlightRecorder(ring_path, capacity=16)
        rec.record(fr.EV_COMMIT, a=3)
        rec.close()
        assert os.path.exists(ring_path)
        dump = fx.decode_ring(ring_path)
        assert len(dump.events) == 1
        assert rec.record(fr.EV_COMMIT) == 0  # closed: recorded nowhere


class TestTornSlots:
    def test_corrupted_slot_is_counted_never_misparsed(self, ring_path):
        with fr.FlightRecorder(ring_path, capacity=16) as rec:
            for i in range(5):
                rec.record(fr.EV_OP_FINISH, tseq=i)
        # Flip one byte in the middle of slot seq=3's body: a torn
        # store.  The decoder must drop exactly that record.
        off = fr.SLOTS_OFFSET + (3 % 16) * fr.SLOT_BYTES + 20
        with open(ring_path, "r+b") as fh:
            fh.seek(off)
            byte = fh.read(1)
            fh.seek(off)
            fh.write(bytes([byte[0] ^ 0xFF]))
        dump = fx.decode_ring(ring_path)
        assert dump.torn == 1
        assert [e.seq for e in dump.events] == [1, 2, 4, 5]

    def test_partial_slot_write_is_torn(self, ring_path):
        with fr.FlightRecorder(ring_path, capacity=16) as rec:
            rec.record(fr.EV_OP_START, tseq=0)
            rec.record(fr.EV_OP_START, tseq=1)
        # Simulate a kill mid-store: zero the tail half of the last
        # slot (the CRC covers the full body, so this cannot verify).
        off = fr.SLOTS_OFFSET + (2 % 16) * fr.SLOT_BYTES
        with open(ring_path, "r+b") as fh:
            fh.seek(off + 32)
            fh.write(b"\x00" * 32)
        dump = fx.decode_ring(ring_path)
        assert dump.torn == 1
        assert [e.seq for e in dump.events] == [1]

    def test_not_a_ring_raises(self, tmp_path):
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"\x00" * (fr.SLOTS_OFFSET + fr.SLOT_BYTES))
        with pytest.raises(ValueError):
            fx.decode_ring(str(bogus))
        short = tmp_path / "short.bin"
        short.write_bytes(b"RFR1")
        with pytest.raises(ValueError):
            fx.decode_ring(str(short))


class TestInternTable:
    def test_long_names_truncate_but_still_resolve(self, ring_path):
        long_name = "a-very-long-file-name-exceeding-the-intern-slot"
        with fr.FlightRecorder(ring_path, capacity=8) as rec:
            key = rec.file_key(long_name)
            rec.record(fr.EV_OP_START, file=key)
        dump = fx.decode_ring(ring_path)
        resolved = dump.file_name(dump.events[0].file)
        assert resolved == long_name[:26]

    def test_overflow_drops_entries_but_keys_stay_stable(self, ring_path):
        with fr.FlightRecorder(ring_path, capacity=8) as rec:
            keys = {f"f{i}": rec.file_key(f"f{i}") for i in range(100)}
            # Memoized: re-interning is a no-op, keys never change.
            assert all(rec.file_key(n) == k for n, k in keys.items())
        dump = fx.decode_ring(ring_path)
        assert len(dump.names) == fr.INTERN_SLOTS
        # Un-interned keys render as stable hex, never crash.
        dropped = [k for n, k in keys.items() if (2, k) not in dump.names]
        assert dropped
        assert dump.file_name(dropped[0]) == f"file#{dropped[0]:08x}"


class TestTraceNum:
    def test_standard_ids_round_trip(self):
        assert fr.trace_num("op-00000042") == 42
        assert fr.trace_num(None) == 0
        assert fr.trace_num("") == 0

    def test_non_numeric_ids_hash_stably(self):
        a = fr.trace_num("custom-abc")
        assert a == fr.trace_num("custom-abc")
        assert a != 0


class TestArming:
    def test_arm_disarm_lifecycle(self, tmp_path):
        assert fr.active() is None or fr.disarm() is not None
        rec = fr.arm(str(tmp_path / "a.ring"), capacity=16)
        assert fr.active() is rec
        rec2 = fr.arm(str(tmp_path / "b.ring"), capacity=16)
        assert fr.active() is rec2
        assert rec.record(fr.EV_BATCH) == 0  # previous was closed
        closed = fr.disarm()
        assert closed is rec2
        assert fr.active() is None

    def test_capacity_floor(self, tmp_path):
        with pytest.raises(ValueError):
            fr.FlightRecorder(str(tmp_path / "c.ring"), capacity=1)


class TestLayoutInvariants:
    def test_slot_and_header_sizes(self):
        assert fr.CRC.size + fr.BODY.size == fr.SLOT_BYTES == 64
        assert fr.INTERN_ENTRY.size == 32
        assert fr.SLOTS_OFFSET == fr.HEADER_BYTES + fr.INTERN_BYTES

    def test_file_size_is_header_plus_slots(self, ring_path):
        with fr.FlightRecorder(ring_path, capacity=128):
            pass
        assert os.path.getsize(ring_path) == (
            fr.SLOTS_OFFSET + 128 * fr.SLOT_BYTES
        )


class TestPrometheusFamilies:
    def test_flightrec_counters_round_trip(self, tmp_path):
        obs_metrics.reset_metrics("flightrec")
        with fr.FlightRecorder(str(tmp_path / "m.ring"), capacity=16) as rec:
            rec.record(fr.EV_BATCH)
            rec.record(fr.EV_OP_START)
        text = render_prometheus()
        families = parse_prometheus_text(text)
        events = families["repro_flightrec_events_total"]
        assert events["type"] == "counter"
        assert events["samples"][0][2] == 2.0
        rings = families["repro_flightrec_rings_total"]
        assert rings["samples"][0][2] >= 1.0
