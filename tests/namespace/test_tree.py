"""Namespace tree semantics: the fold, the cache, and rename purity."""

import threading

import pytest

from repro.namespace import Inode, LookupCache, Namespace
from repro.namespace.tree import ROOT_ID, join_path, split_path
from repro.obs import metrics as obs_metrics


class TestPaths:
    def test_split_normalises(self):
        assert split_path("/") == []
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("//a///b/") == ["a", "b"]

    def test_split_rejects_relative_and_dots(self):
        with pytest.raises(ValueError):
            split_path("a/b")
        with pytest.raises(ValueError):
            split_path("/a/./b")
        with pytest.raises(ValueError):
            split_path("/a/../b")
        with pytest.raises(ValueError):
            split_path(None)

    def test_join_inverts_split(self):
        for p in ("/", "/a", "/a/b/c"):
            assert join_path(split_path(p)) == p


class TestTreeShape:
    def test_root_is_its_own_parent(self):
        ns = Namespace()
        root = ns.inode(ROOT_ID)
        assert root.is_dir and root.parent == ROOT_ID
        assert ns.resolve("/") is root

    def test_create_resolve_roundtrip(self):
        ns = Namespace()
        ns.mkdir("/data")
        node = ns.create("/data/a", size=7)
        assert node.is_file
        assert node.meta["size"] == 7
        assert ns.resolve("/data/a") is node
        assert ns.path_of(node.id) == "/data/a"

    def test_create_parents_builds_chain(self):
        ns = Namespace()
        node = ns.create("/x/y/z/file", parents=True)
        assert ns.resolve("/x/y/z").is_dir
        assert ns.resolve("/x/y/z/file") is node

    def test_missing_parent_and_duplicates_raise(self):
        ns = Namespace()
        with pytest.raises(FileNotFoundError):
            ns.create("/nope/a")
        ns.create("/a", parents=True)
        with pytest.raises(FileExistsError):
            ns.create("/a")
        with pytest.raises(FileExistsError):
            ns.mkdir("/a")
        with pytest.raises(NotADirectoryError):
            ns.create("/a/b")

    def test_unlink_and_rmdir(self):
        ns = Namespace()
        ns.mkdir("/d")
        ns.create("/d/f")
        with pytest.raises(IsADirectoryError):
            ns.unlink("/d")
        with pytest.raises(OSError):
            ns.rmdir("/d")  # non-empty
        ns.unlink("/d/f")
        assert not ns.exists("/d/f")
        ns.rmdir("/d")
        assert not ns.exists("/d")
        assert len(ns) == 1  # the root remains

    def test_listdir_walk_and_fold(self):
        ns = Namespace()
        ns.mkdir("/b")
        ns.mkdir("/a")
        ns.create("/a/2")
        ns.create("/a/1")
        ns.create("/top")
        assert ns.listdir("/") == ["a", "b", "top"]
        assert ns.listdir("/a") == ["1", "2"]
        paths = [p for p, _ in ns.walk()]
        assert paths == ["/a", "/a/1", "/a/2", "/b", "/top"]
        fold = ns.fold(files_only=True)
        assert set(fold) == {"/a/1", "/a/2", "/top"}
        assert fold["/top"] == ns.resolve("/top").id
        assert set(ns.fold()) == {"/a", "/a/1", "/a/2", "/b", "/top"}


class TestRename:
    def test_rename_keeps_id_and_meta(self):
        ns = Namespace()
        ns.mkdir("/old")
        node = ns.create("/old/f", backing="fid-3")
        fid = node.id
        ns.mkdir("/new")
        renamed = ns.rename("/old/f", "/new/g")
        assert renamed.id == fid
        assert renamed.meta["backing"] == "fid-3"
        assert not ns.exists("/old/f")
        assert ns.resolve("/new/g").id == fid
        assert ns.path_of(fid) == "/new/g"

    def test_rename_moves_whole_subtree(self):
        ns = Namespace()
        ns.create("/proj/src/a", parents=True)
        ns.create("/proj/src/b", parents=True)
        ids = {p: n.id for p, n in ns.walk()}
        ns.rename("/proj", "/archive")
        assert ns.resolve("/archive/src/a").id == ids["/proj/src/a"]
        assert ns.resolve("/archive/src/b").id == ids["/proj/src/b"]
        assert not ns.exists("/proj")

    def test_rename_guards(self):
        ns = Namespace()
        ns.mkdir("/a")
        ns.mkdir("/a/b")
        ns.create("/c")
        with pytest.raises(OSError):
            ns.rename("/a", "/a/b/a2")  # into its own subtree
        with pytest.raises(FileExistsError):
            ns.rename("/a", "/c")  # destination taken
        with pytest.raises(OSError):
            ns.rename("/", "/root2")

    def test_rename_invalidates_cached_subtree_lookups(self):
        ns = Namespace()
        ns.create("/proj/src/a", parents=True)
        ns.resolve("/proj/src/a")  # warm the cache
        ns.resolve("/proj/src/a")
        assert ns.cache.hits >= 1
        ns.rename("/proj", "/archive")
        # The stale path no longer resolves — neither from the cache
        # nor from the authoritative walk.
        with pytest.raises(FileNotFoundError):
            ns.resolve("/proj/src/a")
        assert ns.cache.invalidations >= 1
        assert ns.resolve("/archive/src/a").is_file


class TestLookupCache:
    def setup_method(self):
        obs_metrics.reset_metrics("namespace")

    def test_counters_and_registry_mirror(self):
        cache = LookupCache(capacity=2, name="lookup_cache")
        assert cache.get("/a") is None  # miss
        cache.put("/a", 1)
        assert cache.get("/a") == 1  # hit
        cache.put("/b", 2)
        cache.put("/c", 3)  # evicts /a (LRU)
        assert cache.get("/a") is None  # miss after eviction
        cache.invalidate("/b")
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 2
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["invalidations"] == 1
        counts = obs_metrics.snapshot("namespace")
        assert counts["namespace.lookup_cache.hits"] == 1
        assert counts["namespace.lookup_cache.misses"] == 2
        assert counts["namespace.lookup_cache.evictions"] == 1
        assert counts["namespace.lookup_cache.invalidations"] == 1

    def test_lru_order_refreshes_on_hit(self):
        cache = LookupCache(capacity=2, name=None)
        cache.put("/a", 1)
        cache.put("/b", 2)
        cache.get("/a")  # /b becomes the LRU victim
        cache.put("/c", 3)
        assert cache.get("/a") == 1
        assert cache.get("/b") is None

    def test_invalidate_prefix_spares_siblings(self):
        cache = LookupCache(capacity=8, name=None)
        for p, fid in (("/a", 1), ("/a/x", 2), ("/a/x/y", 3), ("/ab", 4)):
            cache.put(p, fid)
        assert cache.invalidate_prefix("/a") == 3
        assert cache.get("/ab") == 4  # "/ab" is not under "/a"

    def test_zero_capacity_never_stores(self):
        cache = LookupCache(capacity=0, name=None)
        cache.put("/a", 1)
        assert len(cache) == 0

    def test_namespace_resolution_hits_the_cache(self):
        ns = Namespace(cache_capacity=4)
        ns.create("/data/f", parents=True)
        before = ns.cache.stats()["hits"]
        ns.resolve("/data/f")
        ns.resolve("/data/f")
        ns.resolve("/data//f/")  # normalises to the same canonical path
        assert ns.cache.stats()["hits"] >= before + 2
        stats = ns.stats()
        assert stats["files"] == 1
        assert stats["dirs"] == 2  # root + /data
        assert stats["lookup_hits"] == ns.cache.stats()["hits"]

    def test_unlink_purges_cached_entry(self):
        ns = Namespace()
        ns.create("/f")
        ns.resolve("/f")
        ns.unlink("/f")
        assert not ns.exists("/f")
        assert ns.cache.invalidations >= 1


class TestConcurrency:
    def test_parallel_resolvers_and_creators_stay_consistent(self):
        ns = Namespace(cache_capacity=64)
        ns.mkdir("/d")
        n_threads = 8
        per_thread = 25
        errors = []
        start = threading.Barrier(n_threads)

        def worker(i):
            start.wait()
            try:
                for k in range(per_thread):
                    path = f"/d/t{i}-{k}"
                    ns.create(path)
                    node = ns.resolve(path)
                    assert node.is_file
                    assert ns.path_of(node.id) == path
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        fold = ns.fold(files_only=True)
        assert len(fold) == n_threads * per_thread
        # Ids are unique and every fold entry resolves to itself.
        assert len(set(fold.values())) == len(fold)
        for path, fid in fold.items():
            assert ns.resolve(path).id == fid


def test_inode_kind_predicates():
    f = Inode(id=1, kind="file", name="f", parent=0)
    d = Inode(id=2, kind="dir", name="d", parent=0)
    assert f.is_file and not f.is_dir
    assert d.is_dir and not d.is_file
