"""ClusterNamespace: binding paths to backing stores, and the service
running on paths — rename moving no data, no queue, and no lock."""

import numpy as np
import pytest

from repro.clusterfile.fs import Clusterfile
from repro.distributions import round_robin
from repro.namespace import ClusterNamespace
from repro.service import FileService

NPROCS = 2
CHUNK = 8
LAYOUT = round_robin(NPROCS, CHUNK)


def _cns():
    return ClusterNamespace(Clusterfile())


class TestBinding:
    def test_create_binds_id_derived_backing(self):
        cns = _cns()
        node = cns.create("/data/a", LAYOUT, parents=True)
        backing, fid = cns.locate("/data/a")
        assert fid == node.id
        assert backing == f"fid-{node.id}"
        assert backing in cns.fs.files

    def test_create_rolls_back_metadata_on_store_failure(self):
        cns = _cns()
        cns.create("/a", LAYOUT)
        # Force a backing-store collision: a second inode whose backing
        # name already exists in the deployment.
        cns.fs.create(f"fid-{cns.tree._next_id}", LAYOUT)
        with pytest.raises(Exception):
            cns.create("/b", LAYOUT)
        assert not cns.exists("/b")

    def test_open_and_locate_reject_directories(self):
        cns = _cns()
        cns.mkdir("/d")
        with pytest.raises(IsADirectoryError):
            cns.open("/d")
        with pytest.raises(IsADirectoryError):
            cns.locate("/d")

    def test_delete_removes_metadata_and_stores(self):
        cns = _cns()
        cns.create("/a", LAYOUT)
        backing, _ = cns.locate("/a")
        cns.delete("/a")
        assert not cns.exists("/a")
        assert backing not in cns.fs.files

    def test_io_through_paths(self):
        cns = _cns()
        cns.create("/data/a", LAYOUT, parents=True)
        cns.set_view("/data/a", 0, round_robin(NPROCS, CHUNK))
        backing, _ = cns.locate("/data/a")
        payload = np.arange(6, dtype=np.uint8)
        cns.fs.write(backing, [(0, 0, payload)])
        got = cns.linear_contents("/data/a")
        assert got[: CHUNK][:6].tolist() == payload.tolist()

    def test_rename_preserves_bytes_without_touching_stores(self):
        cns = _cns()
        cns.create("/old", LAYOUT)
        cns.set_view("/old", 0, round_robin(NPROCS, CHUNK))
        backing, fid = cns.locate("/old")
        cns.fs.write(backing, [(0, 0, np.full(5, 7, dtype=np.uint8))])
        before = cns.linear_contents("/old").copy()
        stores_before = cns.fs.files[backing]

        cns.mkdir("/archive")
        cns.rename("/old", "/archive/new")

        new_backing, new_fid = cns.locate("/archive/new")
        assert (new_backing, new_fid) == (backing, fid)
        assert cns.fs.files[new_backing] is stores_before  # same object
        np.testing.assert_array_equal(
            cns.linear_contents("/archive/new"), before
        )
        assert not cns.exists("/old")


class TestServiceOnPaths:
    def test_service_resolves_paths_and_keys_state_by_file(self):
        cns = _cns()
        for p in ("/t/a", "/t/b"):
            cns.create(p, LAYOUT, parents=True)
            for node in range(NPROCS):
                cns.set_view(p, node, round_robin(NPROCS, CHUNK))
        with FileService(cns.fs, workers=2, namespace=cns) as svc:
            ta = svc.submit_write("/t/a", 0, 0, np.full(4, 1, np.uint8))
            tb = svc.submit_write("/t/b", 0, 0, np.full(4, 2, np.uint8))
            ta.result(timeout=30)
            tb.result(timeout=30)
            # Tickets carry the backing name and the inode id.
            assert ta.file == cns.locate("/t/a")[0]
            assert ta.file_id == cns.open("/t/a").id
            assert tb.file_id != ta.file_id
            # Per-file sequences: both streams started at 0.
            assert ta.seq == 0 and tb.seq == 0
        assert cns.linear_contents("/t/a")[:4].tolist() == [1] * 4
        assert cns.linear_contents("/t/b")[:4].tolist() == [2] * 4

    def test_rename_keeps_sequence_and_queue_continuity(self):
        """Operations before and after a rename land on the same
        per-file state: the sequence keeps counting, nothing resets."""
        cns = _cns()
        cns.create("/live", LAYOUT)
        for node in range(NPROCS):
            cns.set_view("/live", node, round_robin(NPROCS, CHUNK))
        with FileService(cns.fs, workers=2, namespace=cns) as svc:
            t0 = svc.submit_write("/live", 0, 0, np.full(3, 9, np.uint8))
            t0.result(timeout=30)
            cns.rename("/live", "/moved")
            t1 = svc.submit_write("/moved", 0, 3, np.full(3, 8, np.uint8))
            t1.result(timeout=30)
            assert t1.file == t0.file  # same backing store
            assert t1.file_id == t0.file_id
            assert (t0.seq, t1.seq) == (0, 1)  # one continuous sequence
        got = cns.linear_contents("/moved")[:6].tolist()
        assert got == [9, 9, 9, 8, 8, 8]

    def test_bare_names_still_work_without_namespace(self):
        fs = Clusterfile()
        fs.create("plain", LAYOUT)
        for node in range(NPROCS):
            fs.set_view("plain", node, round_robin(NPROCS, CHUNK))
        with FileService(fs, workers=1) as svc:
            t = svc.submit_write("plain", 0, 0, np.full(2, 5, np.uint8))
            t.result(timeout=30)
            assert t.file == "plain"
            assert t.file_id > 0  # service-assigned id
