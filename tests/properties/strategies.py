"""Hypothesis strategies for FALLS structures and partitions.

Sizes are kept small so the byte-index oracles stay cheap; the structures
still cover the interesting shape space (nesting, stride gaps, ragged
last blocks, multi-FALLS sets, displacements).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.algebra import partition_from_elements
from repro.core.falls import Falls, FallsSet
from repro.core.partition import Partition


@st.composite
def flat_falls(draw, max_l=8, max_block=10, max_gap=8, max_n=8):
    l = draw(st.integers(0, max_l))
    blen = draw(st.integers(1, max_block))
    gap = draw(st.integers(0, max_gap))
    n = draw(st.integers(1, max_n))
    return Falls(l, l + blen - 1, blen + gap, n)


@st.composite
def nested_falls(draw, depth=2):
    """A nested FALLS with up to ``depth`` levels."""
    l = draw(st.integers(0, 6))
    blen = draw(st.integers(1, 12))
    gap = draw(st.integers(0, 6))
    n = draw(st.integers(1, 4))
    outer = Falls(l, l + blen - 1, blen + gap, n)
    if depth <= 1 or blen < 2 or not draw(st.booleans()):
        return outer
    # One or two inner FALLS fitting in [0, blen).
    inner: list[Falls] = []
    cursor = 0
    for _ in range(draw(st.integers(1, 2))):
        if cursor >= blen:
            break
        il = draw(st.integers(cursor, blen - 1))
        iblen = draw(st.integers(1, blen - il))
        igap = draw(st.integers(0, 3))
        max_in = max(1, (blen - il - iblen) // (iblen + igap) + 1)
        in_n = draw(st.integers(1, min(3, max_in)))
        f = Falls(il, il + iblen - 1, iblen + igap, in_n)
        if f.extent_stop <= blen - 1:
            inner.append(f)
            cursor = f.extent_stop + 1
    if not inner:
        return outer
    return outer.with_inner(tuple(inner))


@st.composite
def falls_sets(draw, max_falls=3):
    """An ordered (non-interleaved) FallsSet suitable as a partition
    element."""
    count = draw(st.integers(1, max_falls))
    out: list[Falls] = []
    base = 0
    for _ in range(count):
        f = draw(nested_falls())
        shifted = f.shifted(base + draw(st.integers(0, 4)))
        out.append(shifted)
        base = shifted.extent_stop + 1
    return FallsSet(out)


@st.composite
def contiguous_partitions(draw, max_size=48, max_elements=4, max_displacement=10):
    """A valid partition built from random split points: each element is
    one contiguous chunk of the pattern (always a legal tiling)."""
    size = draw(st.integers(2, max_size))
    n_elements = draw(st.integers(1, min(max_elements, size)))
    if n_elements == 1:
        bounds = [0, size]
    else:
        cuts = draw(
            st.lists(
                st.integers(1, size - 1),
                min_size=n_elements - 1,
                max_size=n_elements - 1,
                unique=True,
            )
        )
        bounds = [0] + sorted(cuts) + [size]
    elements = [
        Falls(bounds[i], bounds[i + 1] - 1, size, 1) for i in range(len(bounds) - 1)
    ]
    disp = draw(st.integers(0, max_displacement))
    return Partition(elements, displacement=disp)


@st.composite
def striped_partitions(draw, max_unit=6, max_elements=4, max_displacement=8):
    """A cyclically striped partition: element k owns byte-chunks
    ``[k*u, (k+1)*u)`` of every ``p*u``-byte stripe — the classic
    round-robin file striping of parallel file systems."""
    unit = draw(st.integers(1, max_unit))
    p = draw(st.integers(1, max_elements))
    reps = draw(st.integers(1, 3))
    size = unit * p * reps
    elements = [
        Falls(k * unit, (k + 1) * unit - 1, unit * p, reps) for k in range(p)
    ]
    disp = draw(st.integers(0, max_displacement))
    return Partition(elements, displacement=disp)


@st.composite
def nested_partitions(draw, max_displacement=8):
    """A partition whose first element is a random (possibly nested)
    FallsSet and whose second element owns the complement of the
    pattern — "this view, and everything else"."""
    element = draw(falls_sets())
    disp = draw(st.integers(0, max_displacement))
    return partition_from_elements([element], displacement=disp, fill_last=True)


def any_partition():
    return st.one_of(
        contiguous_partitions(), striped_partitions(), nested_partitions()
    )
