"""Property-based tests pinning the structural algorithms to the
byte-index-set oracle (repro.core.indexset)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ElementMapper,
    Falls,
    cut_falls,
    intersect_elements,
    intersect_falls,
    intersect_nested_sets,
    map_offset,
    project,
    unmap_offset,
)
from repro.core.indexset import (
    falls_indices,
    falls_set_indices,
    pattern_element_indices,
)
from repro.core.normalize import compress_segments, pad_to_height
from repro.core.segments import leaf_segment_arrays

from .strategies import any_partition, flat_falls, nested_falls

MAX_EXAMPLES = 200


def bytes_of(falls_list, shift=0):
    if not falls_list:
        return set()
    return set((falls_set_indices(falls_list) + shift).tolist())


class TestFallsInvariants:
    @given(nested_falls())
    @settings(max_examples=MAX_EXAMPLES)
    def test_size_equals_index_count(self, f):
        assert f.size() == falls_indices(f).size

    @given(nested_falls())
    @settings(max_examples=MAX_EXAMPLES)
    def test_segment_arrays_match_indices(self, f):
        starts, lengths = leaf_segment_arrays(f)
        expanded = np.concatenate(
            [np.arange(s, s + ln) for s, ln in zip(starts, lengths)]
        )
        np.testing.assert_array_equal(np.sort(expanded), falls_indices(f))

    @given(nested_falls(), st.integers(0, 50))
    @settings(max_examples=MAX_EXAMPLES)
    def test_shift_translates_bytes(self, f, delta):
        np.testing.assert_array_equal(
            falls_indices(f.shifted(delta)), falls_indices(f) + delta
        )

    @given(nested_falls(), st.integers(2, 4))
    @settings(max_examples=MAX_EXAMPLES)
    def test_height_padding_is_neutral(self, f, h):
        target = max(h, f.height())
        padded = pad_to_height(f, target)
        assert padded.height() == target
        np.testing.assert_array_equal(falls_indices(padded), falls_indices(f))


class TestCompression:
    @given(flat_falls())
    @settings(max_examples=MAX_EXAMPLES)
    def test_compress_roundtrip(self, f):
        segs = leaf_segment_arrays(f)
        back = compress_segments(segs)
        assert bytes_of(back) == set(falls_indices(f).tolist())
        # A regular family must compress back to a single FALLS.
        assert len(back) == 1


class TestCut:
    @given(flat_falls(), st.integers(0, 60), st.integers(0, 60))
    @settings(max_examples=MAX_EXAMPLES)
    def test_cut_equals_clipped_oracle(self, f, a, b):
        idx = falls_indices(f)
        want = set((idx[(idx >= a) & (idx <= b)] - a).tolist())
        got = bytes_of(cut_falls(f, a, b))
        assert got == want


class TestIntersectFlat:
    @given(flat_falls(), flat_falls())
    @settings(max_examples=MAX_EXAMPLES)
    def test_matches_set_intersection(self, f1, f2):
        want = set(falls_indices(f1).tolist()) & set(falls_indices(f2).tolist())
        assert bytes_of(intersect_falls(f1, f2)) == want

    @given(flat_falls(), flat_falls())
    @settings(max_examples=MAX_EXAMPLES)
    def test_commutative(self, f1, f2):
        assert bytes_of(intersect_falls(f1, f2)) == bytes_of(intersect_falls(f2, f1))


class TestIntersectNested:
    @given(nested_falls(), nested_falls())
    @settings(max_examples=MAX_EXAMPLES)
    def test_matches_set_intersection(self, f1, f2):
        want = set(falls_indices(f1).tolist()) & set(falls_indices(f2).tolist())
        assert bytes_of(intersect_nested_sets([f1], [f2])) == want

    @given(nested_falls())
    @settings(max_examples=MAX_EXAMPLES)
    def test_self_intersection_is_identity(self, f):
        assert bytes_of(intersect_nested_sets([f], [f])) == set(
            falls_indices(f).tolist()
        )


class TestMappingRoundtrip:
    @given(any_partition(), st.data())
    @settings(max_examples=MAX_EXAMPLES)
    def test_map_unmap_roundtrip(self, p, data):
        e = data.draw(st.integers(0, p.num_elements - 1))
        y = data.draw(st.integers(0, 3 * p.element_size(e) - 1))
        x = unmap_offset(p, e, y)
        assert map_offset(p, e, x) == y

    @given(any_partition(), st.data())
    @settings(max_examples=MAX_EXAMPLES)
    def test_map_matches_rank_oracle(self, p, data):
        e = data.draw(st.integers(0, p.num_elements - 1))
        length = p.displacement + 2 * p.size
        offs = pattern_element_indices(p.elements[e], p.size, p.displacement, length)
        for rank, off in enumerate(offs.tolist()):
            assert map_offset(p, e, off) == rank

    @given(any_partition(), st.data())
    @settings(max_examples=100)
    def test_next_prev_bracket_exact(self, p, data):
        e = data.draw(st.integers(0, p.num_elements - 1))
        x = data.draw(st.integers(p.displacement, p.displacement + 2 * p.size))
        nxt = map_offset(p, e, x, mode="next")
        assert unmap_offset(p, e, nxt) >= x
        if nxt > 0:
            assert unmap_offset(p, e, nxt - 1) < x

    @given(any_partition(), st.data())
    @settings(max_examples=100)
    def test_vectorised_equals_scalar(self, p, data):
        e = data.draw(st.integers(0, p.num_elements - 1))
        mapper = ElementMapper(p, e)
        ranks = np.arange(2 * p.element_size(e), dtype=np.int64)
        offs = mapper.unmap_many(ranks)
        for rank, off in zip(ranks.tolist(), offs.tolist()):
            assert unmap_offset(p, e, rank) == off
            assert map_offset(p, e, off) == rank
        np.testing.assert_array_equal(mapper.map_many(offs), ranks)


class TestPartitionIntersectionProperties:
    @given(any_partition(), any_partition())
    @settings(max_examples=60, deadline=None)
    def test_element_intersections_tile_the_file(self, p1, p2):
        """Summed over all element pairs, the intersections cover every
        byte beyond both displacements exactly once."""
        start = max(p1.displacement, p2.displacement)
        import math

        stop = start + math.lcm(p1.size, p2.size) - 1
        seen = np.zeros(stop + 1, dtype=np.int32)
        for i in range(p1.num_elements):
            for j in range(p2.num_elements):
                inter = intersect_elements(p1, i, p2, j)
                starts, lengths = inter.segments_in(0, stop)
                for s, ln in zip(starts.tolist(), lengths.tolist()):
                    seen[s : s + ln] += 1
        np.testing.assert_array_equal(seen[start:], 1)
        np.testing.assert_array_equal(seen[:start], 0)

    @given(any_partition(), any_partition())
    @settings(max_examples=40, deadline=None)
    def test_projection_preserves_counts(self, p1, p2):
        for i in range(p1.num_elements):
            for j in range(p2.num_elements):
                inter = intersect_elements(p1, i, p2, j)
                if inter.is_empty:
                    continue
                pr1 = project(inter, p1, i)
                pr2 = project(inter, p2, j)
                assert (
                    pr1.size_per_period
                    == pr2.size_per_period
                    == inter.size_per_period
                )


class TestIntersectNestedMultiSets:
    """Sets of several nested FALLS on both sides (the shape view-set
    intersections take after cutting), against the oracle."""

    from .strategies import falls_sets as _falls_sets

    @given(_falls_sets(), _falls_sets())
    @settings(max_examples=120, deadline=None)
    def test_matches_set_intersection(self, a, b):
        want = set(falls_set_indices(a.falls).tolist()) & set(
            falls_set_indices(b.falls).tolist()
        )
        got = bytes_of(intersect_nested_sets(list(a.falls), list(b.falls)))
        assert got == want
