"""Property tests for the fast-path machinery added with the plan cache:

* closed-form ``PeriodicFallsSet.count_in`` against the byte-index
  oracle (no tiling may change the answer);
* pair pruning in ``build_plan`` never drops a communicating pair and
  never changes the schedule;
* plan-cache hits are structurally identical to fresh plans, and
  structure keys are stable across independent construction and the
  JSON round-trip.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexset import pattern_element_indices
from repro.core.periodic import PeriodicFallsSet
from repro.core.serialize import (
    partition_from_json,
    partition_structure_key,
    partition_to_json,
)
from repro.redistribution.plan_cache import PlanCache
from repro.redistribution.schedule import build_plan

from .strategies import any_partition, falls_sets

MAX_EXAMPLES = 200


@st.composite
def periodic_sets(draw):
    fs = draw(falls_sets())
    slack = draw(st.integers(0, 7))
    period = fs.extent_stop + 1 + slack
    disp = draw(st.integers(0, 12))
    return PeriodicFallsSet(fs, disp, period)


class TestClosedFormCounting:
    @given(periodic_sets(), st.integers(0, 400), st.integers(0, 120))
    @settings(max_examples=MAX_EXAMPLES)
    def test_count_in_matches_oracle(self, pfs, lo, span):
        hi = lo + span
        offsets = pattern_element_indices(
            pfs.falls, pfs.period, pfs.displacement, hi + 1
        )
        expected = int(np.count_nonzero(offsets >= lo))
        assert pfs.count_in(lo, hi) == expected

    @given(periodic_sets(), st.integers(0, 400), st.integers(0, 120))
    @settings(max_examples=MAX_EXAMPLES)
    def test_count_in_matches_segments(self, pfs, lo, span):
        hi = lo + span
        _, lengths = pfs.segments_in(lo, hi)
        assert pfs.count_in(lo, hi) == int(lengths.sum())

    @given(periodic_sets(), st.integers(0, 50))
    @settings(max_examples=50)
    def test_count_in_far_window_consistent(self, pfs, span):
        # The closed form must not depend on how far from the origin the
        # window sits: shifting a period-aligned window by whole periods
        # preserves the count.
        lo = pfs.displacement
        hi = lo + span
        base = pfs.count_in(lo, hi)
        k = 10**9  # far beyond anything tiling could materialise
        assert pfs.count_in(lo + k * pfs.period, hi + k * pfs.period) == base

    @given(periodic_sets())
    @settings(max_examples=50)
    def test_whole_periods_count(self, pfs):
        lo = pfs.displacement
        for periods in (1, 3):
            hi = lo + periods * pfs.period - 1
            assert pfs.count_in(lo, hi) == periods * pfs.size_per_period


class TestPruningCompleteness:
    @given(any_partition(), any_partition())
    @settings(max_examples=100, deadline=None)
    def test_pruned_plan_equals_unpruned(self, src, dst):
        pruned = build_plan(src, dst, prune=True)
        full = build_plan(src, dst, prune=False)
        assert pruned.candidate_pairs == full.candidate_pairs
        assert [
            (t.src_element, t.dst_element) for t in pruned.transfers
        ] == [(t.src_element, t.dst_element) for t in full.transfers]
        length = max(src.displacement, dst.displacement) + 2 * np.lcm(
            src.size, dst.size
        )
        for tp, tf in zip(pruned.transfers, full.transfers):
            assert tp.bytes_per_period == tf.bytes_per_period
            for attr in ("intersection", "src_projection", "dst_projection"):
                a = getattr(tp, attr).segments_in(0, length)
                b = getattr(tf, attr).segments_in(0, length)
                np.testing.assert_array_equal(a[0], b[0])
                np.testing.assert_array_equal(a[1], b[1])

    @given(any_partition(), any_partition())
    @settings(max_examples=100, deadline=None)
    def test_pruning_accounting(self, src, dst):
        plan = build_plan(src, dst, prune=True)
        assert 0 <= plan.pruned_pairs <= plan.candidate_pairs
        assert len(plan.transfers) <= plan.candidate_pairs - plan.pruned_pairs


class TestPlanCacheEquivalence:
    @given(any_partition(), any_partition())
    @settings(max_examples=60, deadline=None)
    def test_cached_plan_structurally_equal_to_fresh(self, src, dst):
        cache = PlanCache(capacity=8)
        first = cache.get(src, dst)
        # Structurally identical partitions built via the JSON round-trip
        # must hit the same entry and return the very same plan object.
        src2 = partition_from_json(partition_to_json(src))
        dst2 = partition_from_json(partition_to_json(dst))
        again = cache.get(src2, dst2)
        assert again is first
        assert cache.stats()["hits"] == 1
        fresh = build_plan(src, dst)
        assert [
            (t.src_element, t.dst_element) for t in first.transfers
        ] == [(t.src_element, t.dst_element) for t in fresh.transfers]
        length = max(src.displacement, dst.displacement) + 2 * np.lcm(
            src.size, dst.size
        )
        for tc, tf in zip(first.transfers, fresh.transfers):
            a = tc.intersection.segments_in(0, length)
            b = tf.intersection.segments_in(0, length)
            np.testing.assert_array_equal(a[0], b[0])
            np.testing.assert_array_equal(a[1], b[1])

    @given(any_partition())
    @settings(max_examples=60, deadline=None)
    def test_structure_key_stability(self, p):
        key = p.structure_key()
        # Independent reconstruction and the JSON round-trip agree.
        assert partition_structure_key(p) == key
        assert partition_from_json(partition_to_json(p)).structure_key() == key
        # Displacement is part of the structure.
        from repro.core.partition import Partition

        shifted = Partition(
            [e for e in p.elements], displacement=p.displacement + 1
        )
        assert shifted.structure_key() != key
