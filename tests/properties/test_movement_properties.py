"""Property tests for data movement: gather/scatter, redistribution,
and the Clusterfile write/read path.

The central invariant: however two partitions carve up a file, moving
data between them is a *permutation* — every byte lands exactly where
the destination partition says it belongs, nothing is lost, nothing is
fabricated.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import collect, distribute, execute_plan, build_plan
from repro.core.segments import segments_from_pairs
from repro.redistribution.gather_scatter import gather_segments, scatter_segments
from repro.redistribution.naive import redistribute_bytewise_vectorized

from .strategies import any_partition


@st.composite
def segment_lists(draw, space=200, max_segments=12):
    """Sorted disjoint segments within [0, space)."""
    count = draw(st.integers(0, max_segments))
    points = draw(
        st.lists(
            st.integers(0, space - 1),
            min_size=2 * count,
            max_size=2 * count,
            unique=True,
        )
    )
    points.sort()
    pairs = [(points[2 * i], points[2 * i + 1]) for i in range(count)]
    return segments_from_pairs(pairs)


class TestGatherScatterProperties:
    @given(segment_lists(), st.randoms(use_true_random=False))
    @settings(max_examples=150)
    def test_gather_scatter_roundtrip(self, segs, rng):
        src = np.arange(200, dtype=np.uint8)
        packed = gather_segments(src, segs)
        assert packed.size == int(segs[1].sum()) if segs[1].size else True
        dst = np.zeros(200, dtype=np.uint8)
        scatter_segments(dst, segs, packed)
        mask = np.zeros(200, dtype=bool)
        for a, ln in zip(segs[0].tolist(), segs[1].tolist()):
            mask[a : a + ln] = True
        np.testing.assert_array_equal(dst[mask], src[mask])
        assert not dst[~mask].any()

    @given(segment_lists())
    @settings(max_examples=100)
    def test_strategies_agree(self, segs):
        src = np.random.default_rng(0).integers(0, 256, 200, dtype=np.uint8)
        outs = [
            gather_segments(src, segs, strategy=s)
            for s in ("strided", "fancy", "slices")
        ]
        for o in outs[1:]:
            np.testing.assert_array_equal(outs[0], o)


class TestDistributeCollectProperties:
    @given(any_partition(), st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_any_partition(self, p, periods):
        length = p.displacement + periods * p.size + (periods % 2) * 3
        data = np.random.default_rng(1).integers(0, 256, length, dtype=np.uint8)
        buffers = distribute(data, p)
        assert sum(b.size for b in buffers) == length - p.displacement
        back = collect(buffers, p, length)
        np.testing.assert_array_equal(back[p.displacement :], data[p.displacement :])


class TestRedistributionProperties:
    @given(any_partition(), any_partition(), st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_redistribution_is_a_permutation(self, src_p, dst_p, periods):
        import math

        start = max(src_p.displacement, dst_p.displacement)
        length = start + periods * math.lcm(src_p.size, dst_p.size)
        data = np.random.default_rng(2).integers(0, 256, length, dtype=np.uint8)
        src = distribute(data, src_p)
        out = execute_plan(build_plan(src_p, dst_p), src, length)
        back = collect(out, dst_p, length)
        # Bytes beyond both displacements must be moved exactly.
        np.testing.assert_array_equal(back[start:], data[start:])

    @given(any_partition(), any_partition())
    @settings(max_examples=30, deadline=None)
    def test_matches_naive_baseline(self, src_p, dst_p):
        import math

        length = max(src_p.displacement, dst_p.displacement) + math.lcm(
            src_p.size, dst_p.size
        )
        data = np.random.default_rng(3).integers(0, 256, length, dtype=np.uint8)
        src = distribute(data, src_p)
        fast = execute_plan(build_plan(src_p, dst_p), src, length)
        slow = redistribute_bytewise_vectorized(src_p, dst_p, src, length)
        for a, b in zip(fast, slow):
            np.testing.assert_array_equal(a, b)


class TestClusterfileProperties:
    @given(any_partition(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_write_read_roundtrip(self, phys, data_strategy):
        """Any physical partition; a matching-size logical view; random
        write intervals round-trip byte-exactly."""
        from repro.clusterfile import Clusterfile
        from repro.simulation import ClusterConfig

        fs = Clusterfile(
            ClusterConfig(compute_nodes=1, io_nodes=min(4, phys.num_elements))
        )
        fs.create("f", phys)
        # A whole-file view (single element spanning the pattern).
        from repro import Falls, Partition

        whole = Partition(
            [Falls(0, phys.size - 1, phys.size, 1)],
            displacement=phys.displacement,
        )
        fs.set_view("f", 0, whole, element=0)
        length = 3 * phys.size
        lo = data_strategy.draw(st.integers(0, length - 1))
        hi = data_strategy.draw(st.integers(lo, length - 1))
        payload = np.random.default_rng(4).integers(
            0, 256, hi - lo + 1, dtype=np.uint8
        )
        fs.write("f", [(0, lo, payload)])
        got = fs.read("f", [(0, lo, hi - lo + 1)])[0]
        np.testing.assert_array_equal(got, payload)
