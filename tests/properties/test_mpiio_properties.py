"""Property tests for the MPI-IO facade: random derived-datatype views
round-trip byte-exactly and agree with a NumPy oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import round_robin
from repro.clusterfile import Clusterfile
from repro.distributions.mpi_types import primitive, subarray, vector
from repro.mpiio import MPIFile
from repro.simulation import ClusterConfig


@st.composite
def vector_types(draw):
    esize = draw(st.sampled_from([1, 2, 4]))
    blocklength = draw(st.integers(1, 4))
    stride = blocklength + draw(st.integers(0, 4))
    count = draw(st.integers(1, 5))
    return primitive(esize), vector(count, blocklength, stride, primitive(esize))


@st.composite
def subarray_types(draw):
    rows = draw(st.integers(2, 8))
    cols = draw(st.integers(2, 8))
    sr = draw(st.integers(1, rows))
    sc = draw(st.integers(1, cols))
    r0 = draw(st.integers(0, rows - sr))
    c0 = draw(st.integers(0, cols - sc))
    esize = draw(st.sampled_from([1, 4]))
    return (
        primitive(esize),
        subarray((rows, cols), (sr, sc), (r0, c0), primitive(esize)),
        (rows, cols, sr, sc, r0, c0, esize),
    )


def fresh_file():
    fs = Clusterfile(ClusterConfig(compute_nodes=2, io_nodes=2))
    fs.create("f", round_robin(2, 64))
    return fs, MPIFile(fs, "f", 2)


class TestVectorViewProperties:
    @given(vector_types(), st.integers(0, 3), st.data())
    @settings(max_examples=60, deadline=None)
    def test_write_read_roundtrip(self, types, disp_units, data):
        etype, filetype = types
        fs, f = fresh_file()
        disp = disp_units * etype.size
        f.set_view(0, disp, etype, filetype)
        n_etypes = draw_count = data.draw(st.integers(1, 12))
        payload = np.random.default_rng(0).integers(
            0, 256, n_etypes * etype.size, dtype=np.uint8
        )
        offset = data.draw(st.integers(0, 8))
        f.write_at(0, offset, payload)
        got = f.read_at(0, offset, payload.size)
        np.testing.assert_array_equal(got, payload)

    @given(vector_types())
    @settings(max_examples=40, deadline=None)
    def test_view_selects_only_significant_bytes(self, types):
        etype, filetype = types
        fs, f = fresh_file()
        f.set_view(0, 0, etype, filetype)
        nbytes = filetype.size
        f.write_at(0, 0, np.full(nbytes, 255, np.uint8))
        raw = fs.linear_contents("f", filetype.extent)
        from repro.core.indexset import falls_set_indices

        idx = falls_set_indices(filetype.falls.falls)
        mask = np.zeros(filetype.extent, dtype=bool)
        mask[idx] = True
        assert (raw[mask] == 255).all()
        assert not raw[~mask].any()


class TestSubarrayViewProperties:
    @given(subarray_types())
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_region_write(self, case):
        etype, filetype, (rows, cols, sr, sc, r0, c0, esize) = case
        fs, f = fresh_file()
        f.set_view(0, 0, etype, filetype)
        payload = np.random.default_rng(1).integers(
            0, 256, sr * sc * esize, dtype=np.uint8
        )
        f.write_at(0, 0, payload)
        raw = fs.linear_contents("f", rows * cols * esize)
        mat = raw.reshape(rows, cols, esize)
        want = payload.reshape(sr, sc, esize)
        np.testing.assert_array_equal(mat[r0 : r0 + sr, c0 : c0 + sc], want)
        # Everything outside the region stays zero.
        mask = np.zeros((rows, cols), dtype=bool)
        mask[r0 : r0 + sr, c0 : c0 + sc] = True
        assert not mat[~mask].any()
