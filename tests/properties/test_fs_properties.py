"""Property tests for the higher file-system operations: re-layout,
collective writes, and resharding on randomized partitions."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import reshard
from repro.clusterfile import Clusterfile
from repro.clusterfile.relayout import relayout
from repro.redistribution import collect, distribute
from repro.simulation import ClusterConfig

from .strategies import any_partition, contiguous_partitions, striped_partitions


class TestReshardProperties:
    @given(any_partition(), any_partition(), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_reshard_preserves_every_byte(self, src_p, dst_p, periods):
        start = max(src_p.displacement, dst_p.displacement)
        length = start + periods * math.lcm(src_p.size, dst_p.size)
        data = np.random.default_rng(0).integers(0, 256, length, dtype=np.uint8)
        pieces = distribute(data, src_p)
        out = reshard(pieces, src_p, dst_p, length)
        back = collect(out, dst_p, length)
        np.testing.assert_array_equal(back[start:], data[start:])

    @given(any_partition())
    @settings(max_examples=40, deadline=None)
    def test_reshard_to_self_is_identity(self, p):
        length = p.displacement + 2 * p.size
        data = np.random.default_rng(1).integers(0, 256, length, dtype=np.uint8)
        pieces = distribute(data, p)
        out = reshard(pieces, p, p, length)
        for a, b in zip(out, pieces):
            np.testing.assert_array_equal(a, b)


@st.composite
def zero_displacement_partitions(draw):
    """Re-layout requires displacement-0 partitions (file contents start
    at 0); reuse the generic strategies with displacement pinned."""
    p = draw(
        st.one_of(
            contiguous_partitions(max_displacement=0),
            striped_partitions(max_displacement=0),
        )
    )
    return p


class TestRelayoutProperties:
    @given(
        zero_displacement_partitions(),
        zero_displacement_partitions(),
        st.integers(1, 2),
    )
    @settings(max_examples=30, deadline=None)
    def test_relayout_preserves_contents(self, old, new, periods):
        length = periods * math.lcm(old.size, new.size)
        data = np.random.default_rng(2).integers(0, 256, length, dtype=np.uint8)
        fs = Clusterfile(
            ClusterConfig(
                compute_nodes=1,
                io_nodes=max(old.num_elements, new.num_elements),
            )
        )
        fs.create("f", old)
        # Fill the file directly through the stores (no views needed).
        pieces = distribute(data, old)
        for s, piece in enumerate(pieces):
            if piece.size:
                fs.open("f").stores[s].view(0, piece.size - 1)[:] = piece
        res = relayout(fs, "f", new)
        assert res.bytes_moved == length
        np.testing.assert_array_equal(fs.linear_contents("f", length), data)
