"""Property tests for the FALLS set algebra: boolean-algebra laws over
randomized families, against the byte-set oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra import complement, difference, same_bytes, union
from repro.core.indexset import falls_set_indices

from .strategies import falls_sets, nested_falls


def bytes_of(fam):
    falls = fam.falls if hasattr(fam, "falls") else list(fam)
    if not falls:
        return set()
    return set(falls_set_indices(falls).tolist())


class TestAlgebraLaws:
    @given(falls_sets(), falls_sets())
    @settings(max_examples=150)
    def test_union_is_set_union(self, a, b):
        assert bytes_of(union(a, b)) == bytes_of(a) | bytes_of(b)

    @given(falls_sets(), falls_sets())
    @settings(max_examples=150)
    def test_difference_is_set_difference(self, a, b):
        assert bytes_of(difference(a, b)) == bytes_of(a) - bytes_of(b)

    @given(falls_sets())
    @settings(max_examples=100)
    def test_complement_partitions_the_window(self, a):
        within = a.extent_stop + 1
        comp = complement(a, within)
        assert bytes_of(comp) | bytes_of(a) == set(range(within))
        assert bytes_of(comp) & bytes_of(a) == set()

    @given(falls_sets())
    @settings(max_examples=100)
    def test_double_complement_is_identity(self, a):
        within = a.extent_stop + 1
        back = complement(complement(a, within), within)
        assert bytes_of(back) == bytes_of(a)
        assert same_bytes(back, a)

    @given(falls_sets(), falls_sets())
    @settings(max_examples=100)
    def test_de_morgan(self, a, b):
        within = max(a.extent_stop, b.extent_stop) + 1
        lhs = complement(union(a, b), within)
        rhs_bytes = bytes_of(complement(a, within)) & bytes_of(
            complement(b, within)
        )
        assert bytes_of(lhs) == rhs_bytes

    @given(falls_sets(), falls_sets())
    @settings(max_examples=100)
    def test_union_commutative_semantically(self, a, b):
        assert same_bytes(union(a, b), union(b, a))

    @given(nested_falls())
    @settings(max_examples=100)
    def test_same_bytes_reflexive_for_flat_form(self, f):
        from repro.core.normalize import falls_set_from_segments
        from repro.core.segments import leaf_segment_arrays

        flat = falls_set_from_segments(leaf_segment_arrays(f))
        assert same_bytes([f], flat)

    @given(falls_sets(), falls_sets())
    @settings(max_examples=100)
    def test_difference_then_union_restores(self, a, b):
        # (a - b) ∪ (a ∩ b) == a
        from repro.core.intersect_nested import intersect_nested_sets

        inter = intersect_nested_sets(list(a.falls), list(b.falls))
        rebuilt = union(difference(a, b), inter)
        assert bytes_of(rebuilt) == bytes_of(a)
