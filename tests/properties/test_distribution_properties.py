"""Property tests for distribution generators and PITFALLS."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexset import falls_indices, falls_set_indices
from repro.core.pitfalls import Pitfalls, pitfalls_from_falls
from repro.distributions.hpf import Block, BlockCyclic, Cyclic, falls_1d
from repro.distributions.multidim import multidim_element, multidim_partition


@st.composite
def dim_distributions(draw):
    kind = draw(st.sampled_from(["block", "cyclic", "block_cyclic"]))
    if kind == "block":
        return Block()
    if kind == "cyclic":
        return Cyclic()
    return BlockCyclic(draw(st.integers(1, 4)))


class TestHpfProperties:
    @given(dim_distributions(), st.integers(1, 40), st.integers(1, 6))
    @settings(max_examples=200)
    def test_exact_cover(self, dist, n, nprocs):
        """Every element of the dimension is owned exactly once."""
        seen = np.zeros(n, dtype=int)
        for p in range(nprocs):
            for f in falls_1d(dist, n, nprocs, p):
                idx = falls_indices(f)
                assert idx.max() < n
                seen[idx] += 1
        np.testing.assert_array_equal(seen, 1)

    @given(dim_distributions(), st.integers(1, 40), st.integers(1, 6))
    @settings(max_examples=100)
    def test_block_ownership_is_monotone(self, dist, n, nprocs):
        """Lower processor ids own lower-or-equal leading elements for
        BLOCK; all distributions give processor 0 element 0 when p0 owns
        anything."""
        own0 = falls_1d(dist, n, nprocs, 0)
        assert own0, "processor 0 always owns the first element"
        assert own0[0].l == 0


@st.composite
def small_grids(draw):
    ndim = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(2, 8)) for _ in range(ndim))
    dists = tuple(draw(dim_distributions()) for _ in range(ndim))
    grid = []
    for d in range(ndim):
        g = draw(st.integers(1, min(3, shape[d])))
        grid.append(g)
    itemsize = draw(st.sampled_from([1, 2, 4]))
    return shape, itemsize, dists, tuple(grid)


class TestMultidimProperties:
    @given(small_grids())
    @settings(max_examples=150, deadline=None)
    def test_grid_cells_tile_the_array(self, case):
        shape, itemsize, dists, grid = case
        import itertools
        total = int(np.prod(shape)) * itemsize
        seen = np.zeros(total, dtype=int)
        for coords in itertools.product(*(range(g) for g in grid)):
            element = multidim_element(shape, itemsize, dists, grid, coords)
            if element.is_empty:
                continue
            idx = falls_set_indices(element.falls)
            seen[idx] += 1
        np.testing.assert_array_equal(seen, 1)

    @given(small_grids())
    @settings(max_examples=80, deadline=None)
    def test_partition_when_no_empty_cells(self, case):
        shape, itemsize, dists, grid = case
        try:
            p = multidim_partition(shape, itemsize, dists, grid)
        except ValueError:
            return  # some grid cell owns nothing - correctly rejected
        assert p.size == int(np.prod(shape)) * itemsize


@st.composite
def pitfalls_strategy(draw):
    blen = draw(st.integers(1, 5))
    l = draw(st.integers(0, 4))
    p = draw(st.integers(1, 4))
    d = draw(st.integers(blen, blen + 4)) if p > 1 else 0
    n = draw(st.integers(1, 4))
    # Stride must clear all processors' blocks to avoid overlap.
    s = draw(st.integers(max(blen, p * d), max(blen, p * d) + 6))
    return Pitfalls(l, l + blen - 1, s, n, d, p)


class TestPitfallsProperties:
    @given(pitfalls_strategy())
    @settings(max_examples=200)
    def test_expansion_is_disjoint(self, pf):
        all_idx = np.concatenate([falls_indices(f) for f in pf.expand()])
        assert len(set(all_idx.tolist())) == all_idx.size

    @given(pitfalls_strategy())
    @settings(max_examples=200)
    def test_inference_roundtrip(self, pf):
        back = pitfalls_from_falls(pf.expand())
        assert back is not None
        for proc in range(pf.p):
            np.testing.assert_array_equal(
                falls_indices(back.falls_for(proc)),
                falls_indices(pf.falls_for(proc)),
            )

    @given(pitfalls_strategy())
    @settings(max_examples=100)
    def test_sizes_uniform_across_processors(self, pf):
        sizes = {f.size() for f in pf.expand()}
        assert sizes == {pf.size_per_processor()}
