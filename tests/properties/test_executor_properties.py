"""Property tests for the executor variants: serial, threaded and
windowed execution must be indistinguishable on arbitrary partitions."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.redistribution import build_plan, distribute
from repro.redistribution.executor import execute_plan, execute_plan_windowed

from .strategies import any_partition


class TestExecutorEquivalence:
    @given(any_partition(), any_partition(), st.integers(1, 40), st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_windowed_equals_serial(self, src_p, dst_p, window, periods):
        length = max(src_p.displacement, dst_p.displacement) + periods * math.lcm(
            src_p.size, dst_p.size
        )
        data = np.random.default_rng(0).integers(0, 256, length, dtype=np.uint8)
        src = distribute(data, src_p)
        plan = build_plan(src_p, dst_p)
        want = execute_plan(plan, src, length)
        got = execute_plan_windowed(plan, src, length, window)
        for a, b in zip(want, got):
            np.testing.assert_array_equal(a, b)

    @given(any_partition(), any_partition())
    @settings(max_examples=30, deadline=None)
    def test_threaded_equals_serial(self, src_p, dst_p):
        length = max(src_p.displacement, dst_p.displacement) + 2 * math.lcm(
            src_p.size, dst_p.size
        )
        data = np.random.default_rng(1).integers(0, 256, length, dtype=np.uint8)
        src = distribute(data, src_p)
        plan = build_plan(src_p, dst_p)
        want = execute_plan(plan, src, length)
        got = execute_plan(plan, src, length, parallel=True, max_workers=3)
        for a, b in zip(want, got):
            np.testing.assert_array_equal(a, b)

    @given(any_partition(), st.integers(1, 7))
    @settings(max_examples=30, deadline=None)
    def test_windowed_identity_plan(self, p, window):
        length = p.displacement + 2 * p.size + 3  # ragged tail
        data = np.random.default_rng(2).integers(0, 256, length, dtype=np.uint8)
        src = distribute(data, p)
        plan = build_plan(p, p)
        got = execute_plan_windowed(plan, src, length, window)
        for a, b in zip(got, src):
            np.testing.assert_array_equal(a, b)
